package bench

// This file is the host-benchmark regression gate (camrepro -check-host,
// `make check-host`): it re-runs the host measurements and compares them
// against the committed BENCH_host.json. Raw nanoseconds are useless for
// gating — the baseline was generated on one particular machine — so the
// gate checks the host-portable signals instead: the cold/warm ratios
// (a real warm-path regression drags the ratio down no matter how fast
// the host is) and the warm rows' allocation counts (the allocator is
// deterministic, so these move only when code changes).

import (
	"fmt"
	"strings"
)

// DefaultHostTolerance is the fractional slack -check-host applies when
// none is given: a ratio may fall to (1-tol) of the baseline and a warm
// row's allocations may grow to (1+tol) of the baseline before the gate
// trips. The default is deliberately loose because the wall-clock
// ratios swing 2-3x run to run on busy single-core hosts (scheduling
// and GC debt hit the short warm runs hardest), while the regressions
// the gate exists to catch — a lost warm path — collapse a >10x ratio
// to ~1-2x, far below any plausible floor. Allocation counts barely
// jitter at all, so the same tolerance still catches the
// order-of-magnitude jumps a lost pooling or sparse-restore path
// causes.
const DefaultHostTolerance = 0.75

// hostRatios enumerates the portable ratio metrics the gate compares.
var hostRatios = []struct {
	name string
	get  func(*HostReport) float64
}{
	{"campaign_speedup_cold_over_warm", func(r *HostReport) float64 { return r.CampaignSpeedup }},
	{"campaign_alloc_ratio_cold_over_warm", func(r *HostReport) float64 { return r.CampaignAllocRatio }},
	{"restore_speedup_cold_over_warm", func(r *HostReport) float64 { return r.RestoreSpeedup }},
	{"restore_alloc_ratio_cold_over_warm", func(r *HostReport) float64 { return r.RestoreAllocRatio }},
	// Pre-decoded dispatch (docs/PERF.md, Level 4). The `base <= 0` skip
	// below keeps reports generated before the dispatch layer checkable.
	{"campaign_speedup_baseline_over_predecoded", func(r *HostReport) float64 { return r.PredecodeSpeedup }},
	// Checkpoint fast-forwarding (docs/PERF.md, Level 5); same skip for
	// pre-checkpoint reports.
	{"campaign_speedup_replay_over_fastforward", func(r *HostReport) float64 { return r.FastForwardSpeedup }},
}

// CheckHost compares a freshly measured HostReport against a committed
// baseline and returns one human-readable line per regression (empty
// means the gate passes). tol <= 0 selects DefaultHostTolerance.
func CheckHost(baseline, fresh *HostReport, tol float64) []string {
	if tol <= 0 {
		tol = DefaultHostTolerance
	}
	var regressions []string
	if baseline.Schema != HostSchema {
		regressions = append(regressions,
			fmt.Sprintf("baseline schema %q, want %q", baseline.Schema, HostSchema))
		return regressions
	}
	if baseline.Benchmark != fresh.Benchmark {
		regressions = append(regressions,
			fmt.Sprintf("baseline measured %q but this run measured %q — not comparable",
				baseline.Benchmark, fresh.Benchmark))
		return regressions
	}
	if baseline.DispatchBenchmark != "" && baseline.DispatchBenchmark != fresh.DispatchBenchmark {
		regressions = append(regressions,
			fmt.Sprintf("baseline dispatch rows measured %q but this run measured %q — not comparable",
				baseline.DispatchBenchmark, fresh.DispatchBenchmark))
		return regressions
	}
	for _, m := range hostRatios {
		base, got := m.get(baseline), m.get(fresh)
		if base <= 0 {
			continue // an absent or degenerate baseline metric gates nothing
		}
		if floor := base * (1 - tol); got < floor {
			regressions = append(regressions, fmt.Sprintf(
				"%s fell to %.2f, below %.2f (baseline %.2f - %.0f%% tolerance)",
				m.name, got, floor, base, tol*100))
		}
	}
	// Warm-row allocation counts: near-deterministic, so growth past the
	// tolerance (plus one allocation of absolute slack, which lets a
	// zero-alloc baseline stay checkable without tripping on noise) means
	// an instrumented path started allocating.
	for _, b := range baseline.Entries {
		if !strings.HasSuffix(b.Name, "/warm") {
			continue
		}
		f, ok := findHostEntry(fresh, b.Name)
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from this run", b.Name))
			continue
		}
		if ceil := b.AllocsPerRun*(1+tol) + 1; f.AllocsPerRun > ceil {
			regressions = append(regressions, fmt.Sprintf(
				"%s allocs/run rose to %.1f, above %.1f (baseline %.1f + %.0f%% tolerance)",
				b.Name, f.AllocsPerRun, ceil, b.AllocsPerRun, tol*100))
		}
	}
	return regressions
}

func findHostEntry(r *HostReport, name string) (HostEntry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return HostEntry{}, false
}
