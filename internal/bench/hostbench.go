package bench

// This file measures host-side throughput of the warm-start layer: how
// much real time and allocation a campaign-style run costs with pooled,
// snapshot-restored machines versus the historical build-a-machine-per-run
// path. The results go into BENCH_host.json (camrepro -host-json, `make
// bench-host`) so the warm/cold ratio is diffable commit to commit; the
// go-test benchmarks in hostbench_test.go wrap the same measurement
// closures.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"cambricon/internal/fault"
	"cambricon/internal/sim"
)

// HostSchema identifies the HostReport format.
const HostSchema = "cambricon-bench-host/v1"

// hostBenchmark is the Table III benchmark the host measurements run.
// MLP is the cheapest non-trivial benchmark to *simulate* (49
// instructions), which maximizes the share of per-run cost that machine
// setup — the thing the warm-start layer removes — accounts for; it is
// also the canonical smoke benchmark elsewhere in the repo.
const hostBenchmark = "MLP"

// hostFFCheckpoints is the interval-checkpoint count of the
// campaign-fastforward rows: enough that the average fault-free prefix
// shrinks to ~1/18 of the run, few enough that preparing them stays a
// small one-time cost.
const hostFFCheckpoints = 8

// dispatchBenchmark is the Table III benchmark the pre-decoded-dispatch
// rows run. The dispatch layer (docs/PERF.md, Level 4) removes per-fetch
// work — re-encoding for the injector hook, operand-role resolution,
// event-buffer zeroing — so its win shows on loop-heavy benchmarks whose
// campaigns execute many dynamic instructions per run; SOM is the
// clearest such case (MLP, dominated by a handful of large DMAs, barely
// dispatches at all and would measure memmove instead).
const dispatchBenchmark = "SOM"

// HostReport is the machine-readable host-throughput record
// (conventionally BENCH_host.json).
type HostReport struct {
	// Schema versions the file format.
	Schema string `json:"schema"`
	// Generated is the RFC 3339 emission time.
	Generated string `json:"generated"`
	// GoVersion and GOMAXPROCS describe the measurement host.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Seed is the benchmark generation seed; Benchmark the program the
	// warm/cold measurements ran; DispatchBenchmark the program the
	// pre-decoded-dispatch rows ran (empty in pre-dispatch reports).
	Seed              uint64 `json:"seed"`
	Benchmark         string `json:"benchmark"`
	DispatchBenchmark string `json:"dispatch_benchmark,omitempty"`
	// Entries holds one row per measurement, warm and cold variants.
	Entries []HostEntry `json:"entries"`
	// CampaignSpeedup and CampaignAllocRatio are the cold/warm ratios of
	// the campaign-run rows: how many times fewer nanoseconds and heap
	// allocations a warm campaign run costs. RestoreSpeedup and
	// RestoreAllocRatio are the same ratios for the machine-acquisition
	// rows (snapshot restore vs. full build).
	CampaignSpeedup    float64 `json:"campaign_speedup_cold_over_warm"`
	CampaignAllocRatio float64 `json:"campaign_alloc_ratio_cold_over_warm"`
	RestoreSpeedup     float64 `json:"restore_speedup_cold_over_warm"`
	RestoreAllocRatio  float64 `json:"restore_alloc_ratio_cold_over_warm"`
	// PredecodeSpeedup is the baseline/predecoded wall-time ratio of the
	// campaign-dispatch rows: how many times faster a warm fault campaign
	// over DispatchBenchmark runs with pre-decoded dispatch than with the
	// per-step decode loop (zero in pre-dispatch reports).
	PredecodeSpeedup float64 `json:"campaign_speedup_baseline_over_predecoded,omitempty"`
	// FastForwardSpeedup is the replay/checkpointed wall-time ratio of
	// the campaign-fastforward rows: how many times faster a warm,
	// transient-models-only fault campaign over DispatchBenchmark runs
	// when sites fast-forward from interval checkpoints instead of
	// replaying the whole fault-free prefix (zero in pre-checkpoint
	// reports).
	FastForwardSpeedup float64 `json:"campaign_speedup_replay_over_fastforward,omitempty"`
}

// HostEntry is one measurement row.
type HostEntry struct {
	// Name is "<measurement>/<warm|cold>".
	Name string `json:"name"`
	// Runs is the number of timed iterations behind the averages.
	Runs int `json:"runs"`
	// NSPerRun, AllocsPerRun and BytesPerRun are per-iteration averages
	// of wall time, heap allocation count and heap bytes allocated.
	NSPerRun     float64 `json:"ns_per_run"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

// Write emits the report as indented JSON.
func (r *HostReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// hostMeasure times fn over runs iterations, excluding the per-iteration
// prep from both the clock and the allocation counters. Alloc deltas come
// from runtime.MemStats (Mallocs/TotalAlloc are monotonic, so GC between
// iterations does not disturb them).
func hostMeasure(name string, runs int, prep, fn func() error) (HostEntry, error) {
	// Settle the heap first so GC debt left by earlier measurements (the
	// cold paths allocate hundreds of MB) is not billed to this row.
	runtime.GC()
	var ns, allocs, bytes uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		if prep != nil {
			if err := prep(); err != nil {
				return HostEntry{}, fmt.Errorf("bench: host %s: prep: %w", name, err)
			}
		}
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := fn(); err != nil {
			return HostEntry{}, fmt.Errorf("bench: host %s: %w", name, err)
		}
		ns += uint64(time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		bytes += ms1.TotalAlloc - ms0.TotalAlloc
	}
	n := float64(runs)
	return HostEntry{
		Name:         name,
		Runs:         runs,
		NSPerRun:     float64(ns) / n,
		AllocsPerRun: float64(allocs) / n,
		BytesPerRun:  float64(bytes) / n,
	}, nil
}

// hostCampaignFn builds the campaign-throughput measurement closure: one
// fault campaign (golden run + sites faulted runs, single worker so the
// measurement is scheduling-free) over the host benchmark on the given
// suite. The first call pays the suite's one-time costs (program
// generation, snapshot capture when warm), so callers run it once untimed
// before measuring.
func hostCampaignFn(s *Suite, sites int) (func() error, error) {
	return hostCampaignFnFor(s, hostBenchmark, sites)
}

// hostCampaignFnFor is hostCampaignFn over an arbitrary Table III
// benchmark (the dispatch rows run dispatchBenchmark instead).
func hostCampaignFnFor(s *Suite, name string, sites int) (func() error, error) {
	return hostCampaignFnWith(s, name, fault.Campaign{Seed: s.Seed, Sites: sites, Workers: 1})
}

// hostCampaignFnWith is the fully parameterized variant: the caller
// supplies the campaign (checkpoint count, model subset), the helper
// binds it to one target of the suite.
func hostCampaignFnWith(s *Suite, name string, c fault.Campaign) (func() error, error) {
	targets, err := s.FaultTargets()
	if err != nil {
		return nil, err
	}
	var target fault.Target
	for _, t := range targets {
		if t.Name() == name {
			target = t
		}
	}
	if target == nil {
		return nil, fmt.Errorf("bench: host: no benchmark %q", name)
	}
	return func() error {
		_, err := c.Run(context.Background(), []fault.Target{target})
		return err
	}, nil
}

// hostRestoreFns builds the machine-acquisition measurement pair: the
// warm path restores a run-dirtied pooled machine to the benchmark's
// post-Init snapshot (prep re-dirties it by running the program); the
// cold path is the historical full build — sim.New plus image replay and
// program load.
func hostRestoreFns(s *Suite) (prep, warm, cold func() error, err error) {
	p, err := s.Program(hostBenchmark)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	snap, err := s.preparedSnapshot(context.Background(), p, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := sim.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := m.Restore(snap); err != nil {
		return nil, nil, nil, err
	}
	prep = func() error {
		_, err := m.Run()
		return err
	}
	warm = func() error { return m.Restore(snap) }
	cold = func() error {
		fresh, err := sim.New(cfg)
		if err != nil {
			return err
		}
		if err := p.Init(fresh); err != nil {
			return err
		}
		fresh.LoadProgram(p.Asm.Instructions)
		return nil
	}
	return prep, warm, cold, nil
}

// RunHostBenchmarks measures campaign throughput and machine acquisition,
// warm and cold, and assembles the HostReport. runs is the timed
// iteration count per row (restore rows use 4x, they are much cheaper);
// sites is the faulted-run count per campaign iteration.
func RunHostBenchmarks(seed uint64, runs, sites int) (*HostReport, error) {
	if runs <= 0 {
		runs = 10
	}
	if sites <= 0 {
		sites = 32
	}
	rep := &HostReport{
		Schema:            HostSchema,
		Generated:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Seed:              seed,
		Benchmark:         hostBenchmark,
		DispatchBenchmark: dispatchBenchmark,
	}

	warmSuite := NewSuite(seed)
	coldSuite := NewSuite(seed)
	coldSuite.Warm = false

	warmRun, err := hostCampaignFn(warmSuite, sites)
	if err != nil {
		return nil, err
	}
	coldRun, err := hostCampaignFn(coldSuite, sites)
	if err != nil {
		return nil, err
	}
	// Pay one-time costs (program generation, snapshot capture) untimed.
	if err := warmRun(); err != nil {
		return nil, err
	}
	if err := coldRun(); err != nil {
		return nil, err
	}
	warmCamp, err := hostMeasure("campaign-run/warm", runs, nil, warmRun)
	if err != nil {
		return nil, err
	}
	coldCamp, err := hostMeasure("campaign-run/cold", runs, nil, coldRun)
	if err != nil {
		return nil, err
	}

	prep, warmFn, coldFn, err := hostRestoreFns(warmSuite)
	if err != nil {
		return nil, err
	}
	warmRest, err := hostMeasure("machine-acquire/warm", 4*runs, prep, warmFn)
	if err != nil {
		return nil, err
	}
	coldRest, err := hostMeasure("machine-acquire/cold", 4*runs, nil, coldFn)
	if err != nil {
		return nil, err
	}

	// Pre-decoded dispatch (docs/PERF.md, Level 4): the same warm
	// campaign over the loop-heavy dispatch benchmark, with and without
	// pre-decoded programs. Both suites are warm, so the ratio isolates
	// the dispatch layer.
	baseSuite := NewSuite(seed)
	baseSuite.Predecode = false
	decRun, err := hostCampaignFnFor(warmSuite, dispatchBenchmark, sites)
	if err != nil {
		return nil, err
	}
	baseRun, err := hostCampaignFnFor(baseSuite, dispatchBenchmark, sites)
	if err != nil {
		return nil, err
	}
	if err := decRun(); err != nil {
		return nil, err
	}
	if err := baseRun(); err != nil {
		return nil, err
	}
	decCamp, err := hostMeasure("campaign-dispatch/predecoded", runs, nil, decRun)
	if err != nil {
		return nil, err
	}
	baseCamp, err := hostMeasure("campaign-dispatch/baseline", runs, nil, baseRun)
	if err != nil {
		return nil, err
	}

	// Checkpoint fast-forwarding (docs/PERF.md, Level 5): the same warm,
	// pre-decoded campaign over the loop-heavy dispatch benchmark,
	// restricted to the transient fault models — whole-run stuck-lane
	// faults cannot fast-forward (every cycle is faulted) and would
	// dilute the measurement — with and without prepared checkpoints.
	// Reports are byte-identical either way (pinned by differential
	// tests); only the wall clock moves.
	ffModels := []fault.Model{fault.ModelSpadBit, fault.ModelGPRBit, fault.ModelFetchBit, fault.ModelDMABit}
	replayRun, err := hostCampaignFnWith(warmSuite, dispatchBenchmark,
		fault.Campaign{Seed: seed, Sites: sites, Workers: 1, Models: ffModels})
	if err != nil {
		return nil, err
	}
	ffRun, err := hostCampaignFnWith(warmSuite, dispatchBenchmark,
		fault.Campaign{Seed: seed, Sites: sites, Workers: 1, Models: ffModels, Checkpoints: hostFFCheckpoints})
	if err != nil {
		return nil, err
	}
	if err := replayRun(); err != nil {
		return nil, err
	}
	if err := ffRun(); err != nil {
		return nil, err
	}
	replayCamp, err := hostMeasure("campaign-fastforward/replay", runs, nil, replayRun)
	if err != nil {
		return nil, err
	}
	ffCamp, err := hostMeasure("campaign-fastforward/checkpointed", runs, nil, ffRun)
	if err != nil {
		return nil, err
	}

	rep.Entries = []HostEntry{warmCamp, coldCamp, warmRest, coldRest, decCamp, baseCamp, replayCamp, ffCamp}
	rep.CampaignSpeedup = ratio(coldCamp.NSPerRun, warmCamp.NSPerRun)
	rep.CampaignAllocRatio = ratio(coldCamp.AllocsPerRun, warmCamp.AllocsPerRun)
	rep.RestoreSpeedup = ratio(coldRest.NSPerRun, warmRest.NSPerRun)
	rep.RestoreAllocRatio = ratio(coldRest.AllocsPerRun, warmRest.AllocsPerRun)
	rep.PredecodeSpeedup = ratio(baseCamp.NSPerRun, decCamp.NSPerRun)
	rep.FastForwardSpeedup = ratio(replayCamp.NSPerRun, ffCamp.NSPerRun)
	return rep, nil
}

// ratio is the cold/warm improvement factor. An allocation-free warm
// path would divide by zero (and +Inf does not survive JSON), so the
// warm denominator is floored at one unit — understating, never
// overstating, the win.
func ratio(cold, warm float64) float64 {
	if warm < 1 {
		warm = 1
	}
	return cold / warm
}
