package bench

import (
	"fmt"
	"strings"

	"cambricon/internal/asm"
	"cambricon/internal/sim"
)

// RunAblations quantifies the design choices DESIGN.md calls out. This is
// an extension beyond the paper's published figures: each row removes or
// degrades one mechanism the paper argues for and reports the cycle cost
// on a kernel that exercises it.
func RunAblations(s *Suite) (*Table, error) {
	t := &Table{ID: "ablate", Title: "Design-choice ablations (extension)",
		Header: []string{"Design choice", "Kernel", "Baseline", "Ablated", "Slowdown"}}

	run := func(cfg sim.Config, src string) (int64, error) {
		p, err := asm.Assemble(src)
		if err != nil {
			return 0, err
		}
		m, pooled, err := s.kernelMachine(cfg)
		if err != nil {
			return 0, err
		}
		defer s.releaseMachine(m, pooled)
		m.LoadProgram(p.Instructions)
		st, err := m.Run()
		if err != nil {
			return 0, err
		}
		return st.Cycles, nil
	}
	addRow := func(choice, kernel string, base, abl int64) {
		t.AddRow(choice, kernel, fmt.Sprintf("%d cyc", base), fmt.Sprintf("%d cyc", abl),
			fmt.Sprintf("%.2fx", float64(abl)/float64(base)))
	}

	// 1. Dedicated MMV vs per-row dot-product decomposition (§III-A).
	const rows, cols = 64, 64
	mmvSrc := fmt.Sprintf(`
	SMOVE $1, #%d
	SMOVE $2, #%d
	SMOVE $4, #0
	SMOVE $5, #0
	SMOVE $6, #8192
	RV    $4, $1
	MMV   $6, $2, $5, $4, $1
`, cols, rows)
	var vdot strings.Builder
	fmt.Fprintf(&vdot, "\tSMOVE $1, #%d\n\tSMOVE $4, #0\n\tSMOVE $5, #8192\n\tRV $4, $1\n", cols)
	for i := 0; i < rows; i++ {
		vdot.WriteString("\tVDOT $10, $1, $4, $5\n")
	}
	base, err := run(s.Config, mmvSrc)
	if err != nil {
		return nil, err
	}
	abl, err := run(s.Config, vdot.String())
	if err != nil {
		return nil, err
	}
	addRow("MMV instruction vs VDOT decomposition", fmt.Sprintf("%dx%d matvec", rows, cols), base, abl)

	// 2. Dedicated VGTM vs a compare/select sequence (§III-C): without
	// the merge instruction, each pooling step needs VGT + two VMV + VAV
	// plus a mask inversion.
	const poolIters = 64
	var gtm, sel strings.Builder
	header := "\tSMOVE $1, #32\n\tSMOVE $2, #0\n\tSMOVE $3, #4096\n\tSMOVE $4, #8192\n" +
		"\tSMOVE $5, #12288\n\tSMOVE $6, #16384\n\tSMOVE $7, #20480\n" +
		"\tRV $2, $1\n\tRV $3, $1\n"
	gtm.WriteString(header)
	sel.WriteString(header)
	fmt.Fprintf(&gtm, "\tSMOVE $8, #%d\n", poolIters)
	gtm.WriteString("g:\tVGTM $4, $1, $2, $3\n\tSADD $8, $8, #-1\n\tCB #g, $8\n")
	fmt.Fprintf(&sel, "\tSMOVE $8, #%d\n", poolIters)
	sel.WriteString(`h:	VGT  $5, $1, $2, $3
	VMV  $6, $1, $5, $2
	VNOT $5, $1, $5
	VMV  $7, $1, $5, $3
	VAV  $4, $1, $6, $7
	SADD $8, $8, #-1
	CB   #h, $8
`)
	base, err = run(s.Config, gtm.String())
	if err != nil {
		return nil, err
	}
	abl, err = run(s.Config, sel.String())
	if err != nil {
		return nil, err
	}
	addRow("VGTM instruction vs compare+select", fmt.Sprintf("%d pooling merges", poolIters), base, abl)

	// 3. Fig. 9 banking: four banks vs one (operand streams collide).
	conflictSrc := `
	SMOVE $1, #512
	SMOVE $2, #0
	SMOVE $3, #4096
	SMOVE $4, #8192
	SMOVE $8, #32
c:	VAV   $4, $1, $2, $3
	SADD  $8, $8, #-1
	CB    #c, $8
`
	oneBank := s.Config
	oneBank.SpadBanks = 1
	base, err = run(s.Config, conflictSrc)
	if err != nil {
		return nil, err
	}
	abl, err = run(oneBank, conflictSrc)
	if err != nil {
		return nil, err
	}
	addRow("4-bank crossbar vs single-port scratchpad", "streamed VAV over 512 elems", base, abl)

	// 4. Issue width: the Table II 2-wide front end vs 1-wide, on the
	// scalar-heavy benchmark kernel shape (SOM-like loop).
	scalarLoop := `
	SMOVE $1, #64
	SMOVE $2, #0
	SMOVE $3, #4096
	SMOVE $8, #128
i:	VSV   $3, $1, $2, $2
	SADD  $2, $2, #2
	SADD  $9, $9, #1
	SADD  $8, $8, #-1
	CB    #i, $8
`
	narrow := s.Config
	narrow.IssueWidth = 1
	base, err = run(s.Config, scalarLoop)
	if err != nil {
		return nil, err
	}
	abl, err = run(narrow, scalarLoop)
	if err != nil {
		return nil, err
	}
	addRow("2-wide issue vs 1-wide", "scalar-heavy loop (128 iters)", base, abl)

	t.Notef("not a paper figure: quantifies the §III design arguments on this simulator")
	return t, nil
}
