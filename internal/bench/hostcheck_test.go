package bench

import (
	"strings"
	"testing"
)

func checkBaseline() *HostReport {
	return &HostReport{
		Schema:    HostSchema,
		Benchmark: hostBenchmark,
		Entries: []HostEntry{
			{Name: "campaign-run/warm", Runs: 10, NSPerRun: 1e6, AllocsPerRun: 100, BytesPerRun: 1e5},
			{Name: "campaign-run/cold", Runs: 10, NSPerRun: 12e6, AllocsPerRun: 1700, BytesPerRun: 2e8},
			{Name: "machine-acquire/warm", Runs: 40, NSPerRun: 5e4, AllocsPerRun: 0, BytesPerRun: 0},
			{Name: "machine-acquire/cold", Runs: 40, NSPerRun: 2e6, AllocsPerRun: 13, BytesPerRun: 1e8},
		},
		CampaignSpeedup:    12,
		CampaignAllocRatio: 17,
		RestoreSpeedup:     40,
		RestoreAllocRatio:  13,
	}
}

func TestCheckHostPassesOnMatchingReports(t *testing.T) {
	base, fresh := checkBaseline(), checkBaseline()
	if regs := CheckHost(base, fresh, 0); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
	// Inside tolerance: 60% ratio drop against the default 75% slack.
	fresh.CampaignSpeedup = 12 * 0.4
	if regs := CheckHost(base, fresh, 0); len(regs) != 0 {
		t.Fatalf("in-tolerance drift regressed: %v", regs)
	}
	// A faster-than-baseline run is never a regression.
	fresh = checkBaseline()
	fresh.RestoreSpeedup = 400
	if regs := CheckHost(base, fresh, 0); len(regs) != 0 {
		t.Fatalf("improvement regressed: %v", regs)
	}
}

func TestCheckHostCatchesRatioRegression(t *testing.T) {
	base, fresh := checkBaseline(), checkBaseline()
	fresh.RestoreSpeedup = 40 * 0.2 // below the default (1-0.75) floor
	regs := CheckHost(base, fresh, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "restore_speedup") {
		t.Fatalf("regressions = %v, want one restore_speedup line", regs)
	}
	// A tighter tolerance catches smaller drops.
	fresh = checkBaseline()
	fresh.CampaignSpeedup = 12 * 0.85
	if regs := CheckHost(base, fresh, 0.1); len(regs) != 1 ||
		!strings.Contains(regs[0], "campaign_speedup") {
		t.Fatalf("regressions = %v, want one campaign_speedup line", regs)
	}
}

func TestCheckHostCatchesWarmAllocGrowth(t *testing.T) {
	base, fresh := checkBaseline(), checkBaseline()
	// The zero-alloc warm acquire starting to allocate is the canonical
	// lost-pooling signal; the +1 absolute slack must not mask it.
	fresh.Entries[2].AllocsPerRun = 5
	regs := CheckHost(base, fresh, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "machine-acquire/warm") {
		t.Fatalf("regressions = %v, want one machine-acquire/warm line", regs)
	}
	// Sub-slack noise on a zero baseline passes.
	fresh.Entries[2].AllocsPerRun = 0.5
	if regs := CheckHost(base, fresh, 0); len(regs) != 0 {
		t.Fatalf("sub-slack alloc noise regressed: %v", regs)
	}
}

func TestCheckHostRejectsMismatchedInputs(t *testing.T) {
	base, fresh := checkBaseline(), checkBaseline()
	base.Schema = "something-else/v9"
	if regs := CheckHost(base, fresh, 0); len(regs) != 1 ||
		!strings.Contains(regs[0], "schema") {
		t.Fatalf("regressions = %v, want one schema line", regs)
	}
	base = checkBaseline()
	fresh.Benchmark = "CNN1"
	if regs := CheckHost(base, fresh, 0); len(regs) != 1 ||
		!strings.Contains(regs[0], "not comparable") {
		t.Fatalf("regressions = %v, want one comparability line", regs)
	}
	// A warm row dropped from the fresh run is itself a finding.
	base, fresh = checkBaseline(), checkBaseline()
	fresh.Entries = fresh.Entries[:2]
	if regs := CheckHost(base, fresh, 0); len(regs) != 1 ||
		!strings.Contains(regs[0], "missing") {
		t.Fatalf("regressions = %v, want one missing-row line", regs)
	}
}
