// Package bench is the experiment harness: one experiment per table and
// figure of the paper's evaluation (Section V), each regenerating its
// result as a rendered table with the published value alongside the
// measured one.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig10").
	ID string
	// Title describes the table/figure being reproduced.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells, row-major.
	Rows [][]string
	// Notes carry caveats and paper-vs-measured commentary.
	Notes []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render lays the table out as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	// Column count is the widest row (a malformed experiment must render
	// rather than panic).
	cols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}
