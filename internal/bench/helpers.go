package bench

import (
	"context"

	"cambricon/internal/codegen"
	"cambricon/internal/sim"
)

// codegenLogistic builds the Section VI prediction-phase program.
func codegenLogistic(seed uint64) (*codegen.Program, error) {
	return codegen.GenLogistic(seed)
}

// codegenLogisticTraining builds the Section VI training-phase program.
func codegenLogisticTraining(seed uint64) (*codegen.Program, error) {
	return codegen.GenLogisticTraining(seed)
}

// runProgram executes a generated program on a suite-configured machine
// (pooled and snapshot-restored when the suite is Warm), verifying its
// expectations.
func runProgram(s *Suite, p *codegen.Program) (sim.Stats, error) {
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	m, pooled, err := s.preparedMachine(context.Background(), p, cfg)
	if err != nil {
		return sim.Stats{}, err
	}
	defer s.releaseMachine(m, pooled)
	return p.ExecutePreparedContext(context.Background(), m)
}
