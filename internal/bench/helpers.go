package bench

import (
	"cambricon/internal/codegen"
	"cambricon/internal/sim"
)

// codegenLogistic builds the Section VI prediction-phase program.
func codegenLogistic(seed uint64) (*codegen.Program, error) {
	return codegen.GenLogistic(seed)
}

// codegenLogisticTraining builds the Section VI training-phase program.
func codegenLogisticTraining(seed uint64) (*codegen.Program, error) {
	return codegen.GenLogisticTraining(seed)
}

// runProgram executes a generated program on a fresh suite-configured
// machine, verifying its expectations.
func runProgram(s *Suite, p *codegen.Program) (sim.Stats, error) {
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	m, err := sim.New(cfg)
	if err != nil {
		return sim.Stats{}, err
	}
	return p.Execute(m)
}
