package bench

// This file is the warm-start layer (docs/PERF.md, "Level 3"): campaign
// and experiment paths that used to construct a fresh 16 MiB sim.Machine
// and replay a workload image per run instead draw a pooled machine and
// Restore a captured post-Init snapshot — a handful of dirty-page copies.
// Simulated statistics are bit-identical either way; Suite.Warm=false is
// the escape hatch that forces the historical cold behaviour.

import (
	"context"
	"sync"
	"sync/atomic"

	"cambricon/internal/codegen"
	"cambricon/internal/reqtrace"
	"cambricon/internal/sim"
)

// defaultPoolMaxIdle bounds each entry's free list: a release beyond it
// drops the machine for the garbage collector instead of growing the
// pool. 64 comfortably covers the campaign worker counts the suite runs
// at while capping idle retention at 64 machines per configuration.
const defaultPoolMaxIdle = 64

// machinePool caches sim.Machine instances per architectural
// configuration (the pool key normalizes the watchdog budget away, see
// sim.Machine.SetMaxCycles). Machines are handed out bare; callers
// restore them to a snapshot before use. Configurations that differ only
// in non-memory parameters (issue width, lane counts, timing knobs —
// the ablation and sweep axes) share machines across entries: a pool
// miss steals an idle machine from any entry with the same memory
// geometry and Reconfigures it, reusing its 16 MiB main-memory
// allocation instead of building a fresh one.
//
// Retention is an explicit bounded free list per entry (LIFO, capacity
// defaultPoolMaxIdle, preallocated so acquire and release never
// allocate) rather than a sync.Pool: machines survive until shrink —
// not until the next GC cycle — which makes reuse deterministic
// (testable under -race without GC pinning) and gives the autoscaler
// real Grow/Shrink levers (prewarm, shrink, idle). The zero value is
// ready.
type machinePool struct {
	mu        sync.Mutex
	entries   map[sim.Config]*poolEntry
	byMem     map[memKey][]*poolEntry
	builds    atomic.Int64
	reuses    atomic.Int64
	memShared atomic.Int64
	drops     atomic.Int64
}

type poolEntry struct {
	// free is the bounded LIFO free list, guarded by machinePool.mu. Its
	// capacity is fixed at construction; append never reallocates.
	free []*sim.Machine
	// pristine is the post-construction zero state of this configuration,
	// synthesized from the configuration alone (sim.PristineSnapshot):
	// handcrafted kernels (ablations, sweeps) restore to it so a recycled
	// — or cross-configuration stolen — machine is indistinguishable from
	// a fresh one.
	pristine *sim.Snapshot
}

// pop removes and returns the most recently released idle machine, nil
// when the free list is empty. Caller holds machinePool.mu.
func (e *poolEntry) pop() *sim.Machine {
	n := len(e.free)
	if n == 0 {
		return nil
	}
	m := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	return m
}

// poolKey normalizes a configuration to its architectural identity.
func poolKey(cfg sim.Config) sim.Config {
	cfg.MaxCycles = 0
	return cfg
}

// memKey is a configuration's memory geometry — the sharing domain for
// cross-configuration machine steals (sim.Machine.Reconfigure accepts
// exactly the configurations whose memKey matches).
type memKey struct {
	main, vspad, mspad, banks, bankBytes int
}

func memKeyOf(cfg sim.Config) memKey {
	return memKey{
		main:      cfg.MainMemBytes,
		vspad:     cfg.VectorSpadBytes,
		mspad:     cfg.MatrixSpadBytes,
		banks:     cfg.SpadBanks,
		bankBytes: cfg.BankBytes,
	}
}

func (p *machinePool) entry(cfg sim.Config) (*poolEntry, error) {
	key := poolKey(cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.entries == nil {
		p.entries = map[sim.Config]*poolEntry{}
		p.byMem = map[memKey][]*poolEntry{}
	}
	e := p.entries[key]
	if e == nil {
		pristine, err := sim.PristineSnapshot(key)
		if err != nil {
			return nil, err
		}
		e = &poolEntry{
			free:     make([]*sim.Machine, 0, defaultPoolMaxIdle),
			pristine: pristine,
		}
		p.entries[key] = e
		mk := memKeyOf(key)
		p.byMem[mk] = append(p.byMem[mk], e)
	}
	return e, nil
}

// acquire returns a machine for cfg with its watchdog budget set to
// cfg.MaxCycles: recycled from cfg's own entry when possible
// (reused=true), stolen and reconfigured from a same-memory-geometry
// entry otherwise (reused and shared=true), freshly built as the last
// resort. The machine's other state is whatever the previous user left;
// callers must Restore a snapshot (or load a program onto a pristine
// machine) before running.
func (p *machinePool) acquire(cfg sim.Config) (m *sim.Machine, reused, shared bool, err error) {
	e, err := p.entry(cfg)
	if err != nil {
		return nil, false, false, err
	}
	p.mu.Lock()
	if m := e.pop(); m != nil {
		p.mu.Unlock()
		p.reuses.Add(1)
		m.SetMaxCycles(cfg.MaxCycles)
		return m, true, false, nil
	}
	// Own entry is empty: steal from any sibling sharing cfg's memory
	// geometry under the same critical section.
	var stolen *sim.Machine
	for _, sib := range p.byMem[memKeyOf(cfg)] {
		if sib == e {
			continue
		}
		if stolen = sib.pop(); stolen != nil {
			break
		}
	}
	p.mu.Unlock()
	if stolen != nil {
		if err := stolen.Reconfigure(cfg); err == nil {
			p.reuses.Add(1)
			p.memShared.Add(1)
			return stolen, true, true, nil
		}
		// A same-memKey reconfigure can only fail on an invalid cfg,
		// which sim.New below will report; drop the stolen machine.
	}
	m, err = sim.New(cfg)
	if err != nil {
		return nil, false, false, err
	}
	p.builds.Add(1)
	return m, false, false, nil
}

// idle reports the total number of machines sitting on free lists.
func (p *machinePool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		n += len(e.free)
	}
	return n
}

// prewarm builds machines for cfg until its entry holds target idle
// ones (bounded by the free-list capacity), returning how many it
// built. The machines are bare, exactly as acquire would hand them out.
func (p *machinePool) prewarm(cfg sim.Config, target int) (built int, err error) {
	key := poolKey(cfg)
	e, err := p.entry(key)
	if err != nil {
		return 0, err
	}
	for {
		p.mu.Lock()
		need := target - len(e.free)
		if need > cap(e.free)-len(e.free) {
			need = cap(e.free) - len(e.free)
		}
		p.mu.Unlock()
		if need <= 0 {
			return built, nil
		}
		m, err := sim.New(key)
		if err != nil {
			return built, err
		}
		p.builds.Add(1)
		p.mu.Lock()
		if len(e.free) < cap(e.free) {
			e.free = append(e.free, m)
		}
		p.mu.Unlock()
		built++
	}
}

// shrink drops idle machines until at most keep remain pool-wide,
// releasing the excess to the garbage collector (largest free lists
// first), and returns how many it dropped. In-use machines are
// untouched — they rejoin or overflow the bound on release as usual.
func (p *machinePool) shrink(keep int) (dropped int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		total := 0
		var victim *poolEntry
		for _, e := range p.entries {
			total += len(e.free)
			if victim == nil || len(e.free) > len(victim.free) {
				victim = e
			}
		}
		if total <= keep || victim == nil || len(victim.free) == 0 {
			return dropped
		}
		victim.free[len(victim.free)-1] = nil
		victim.free = victim.free[:len(victim.free)-1]
		dropped++
		p.drops.Add(1)
	}
}

// acquirePristine is acquire plus a restore to the configuration's
// post-construction zero state: registers, PRNG and all memory exactly as
// sim.New left them.
func (p *machinePool) acquirePristine(cfg sim.Config) (*sim.Machine, bool, bool, error) {
	m, reused, shared, err := p.acquire(cfg)
	if err != nil {
		return nil, false, false, err
	}
	e, err := p.entry(cfg)
	if err != nil {
		return nil, false, false, err
	}
	if err := m.Restore(e.pristine); err != nil {
		return nil, false, false, err
	}
	return m, reused, shared, nil
}

// release detaches the machine's observers and returns it to its
// entry's free list; a full list (or an entry the pool never built,
// which cannot happen through acquire) drops the machine instead. The
// free list is preallocated, so the append never allocates and the warm
// request path stays 0-alloc.
func (p *machinePool) release(m *sim.Machine) {
	m.SetTracer(nil)
	m.SetInjector(nil)
	m.SetTrace(nil)
	m.SetMetrics(nil)
	key := poolKey(m.Config())
	p.mu.Lock()
	e := p.entries[key]
	if e != nil && len(e.free) < cap(e.free) {
		e.free = append(e.free, m)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.drops.Add(1)
}

// preparedEntry is the singleflight cell for one benchmark's post-Init
// snapshot. done flips (atomically, after snap/err are written) when the
// build finishes, so DropPreparedSnapshots can tell a completed entry
// from one an in-flight builder still owns.
type preparedEntry struct {
	once sync.Once
	done atomic.Bool
	snap *sim.Snapshot
	err  error
}

// decodedEntry is the singleflight cell for one benchmark's pre-decoded
// program (docs/PERF.md, Level 4).
type decodedEntry struct {
	once sync.Once
	dp   *sim.DecodedProgram
	err  error
}

// decodedProgram pre-decodes (once per benchmark) the program's
// instruction stream: operand roles, encoded words and the fusion plan
// are computed here and shared — via the prepared snapshot — by every
// pooled machine and fault-campaign worker that runs the benchmark. A
// request recorder on ctx gets a "decode.lookup" span with the cache
// outcome.
func (s *Suite) decodedProgram(ctx context.Context, prog *codegen.Program) (*sim.DecodedProgram, error) {
	rec := reqtrace.From(ctx)
	sp := rec.Start(reqtrace.Root, "decode.lookup")
	defer rec.End(sp)
	s.decMu.Lock()
	if s.decoded == nil {
		s.decoded = map[string]*decodedEntry{}
	}
	de, hit := s.decoded[prog.Name]
	if de == nil {
		de = &decodedEntry{}
		s.decoded[prog.Name] = de
	}
	s.decMu.Unlock()
	if hit {
		// Served from (or blocked on) an existing singleflight entry: the
		// caller did not pay for a decode of its own.
		s.sm().decodeCacheHit()
	}
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	rec.AnnotateStr(sp, "cache", outcome)
	de.once.Do(func() {
		de.dp, de.err = sim.Predecode(prog.Asm.Instructions)
		if de.err == nil {
			s.sm().predecoded(de.dp)
		}
	})
	return de.dp, de.err
}

// loadProgram loads prog onto m through the suite's decode policy:
// pre-decoded (cached) when Predecode, the per-step decode path
// otherwise. Simulated statistics are bit-identical either way.
func (s *Suite) loadProgram(ctx context.Context, m *sim.Machine, prog *codegen.Program) error {
	if !s.Predecode {
		m.LoadProgram(prog.Asm.Instructions)
		return nil
	}
	dp, err := s.decodedProgram(ctx, prog)
	if err != nil {
		return err
	}
	m.LoadDecoded(dp)
	return nil
}

// preparedSnapshot builds (once per benchmark) the snapshot of a machine
// that has the program's memory image written and its instruction stream
// loaded — the state every run of that benchmark starts from. The
// requester that pays for the build gets a "snapshot.prepare" span; the
// singleflight winners that merely wait record nothing.
func (s *Suite) preparedSnapshot(ctx context.Context, prog *codegen.Program, cfg sim.Config) (*sim.Snapshot, error) {
	s.prepMu.Lock()
	if s.prepared == nil {
		s.prepared = map[string]*preparedEntry{}
	}
	pe := s.prepared[prog.Name]
	if pe == nil {
		pe = &preparedEntry{}
		s.prepared[prog.Name] = pe
	}
	s.prepMu.Unlock()
	pe.once.Do(func() {
		defer pe.done.Store(true)
		rec := reqtrace.From(ctx)
		sp := rec.Start(reqtrace.Root, "snapshot.prepare")
		defer rec.End(sp)
		m, reused, shared, err := s.pool.acquirePristine(poolKey(cfg))
		if err != nil {
			pe.err = err
			return
		}
		s.sm().poolAcquired(reused, shared)
		if err := prog.Init(m); err != nil {
			pe.err = err
			return
		}
		if err := s.loadProgram(ctx, m, prog); err != nil {
			pe.err = err
			return
		}
		pe.snap = m.Snapshot()
		s.sm().snapshotPrepared(pe.snap)
		rec.AnnotateInt(sp, "resident_bytes", int64(pe.snap.Bytes()))
		s.pool.release(m)
	})
	return pe.snap, pe.err
}

// preparedMachine returns a machine holding prog's post-Init state. Warm
// suites restore a pooled machine from the benchmark's snapshot and
// report pooled=true — the caller must hand it back via releaseMachine
// when done with the run. Cold suites (Warm=false) build a fresh machine
// and replay the image, the historical behaviour, with pooled=false.
// Both produce bit-identical run statistics. (The pooled flag, rather
// than a release closure, keeps the per-run hot path allocation-free.)
// A request recorder on ctx gets per-phase spans: machine.build /
// program.init on the cold path, pool.acquire / snapshot.restore on the
// warm path (docs/OBSERVABILITY.md, "Request tracing").
func (s *Suite) preparedMachine(ctx context.Context, prog *codegen.Program, cfg sim.Config) (m *sim.Machine, pooled bool, err error) {
	sm := s.sm()
	rec := reqtrace.From(ctx)
	if !s.Warm {
		sp := rec.Start(reqtrace.Root, "machine.build")
		m, err := sim.New(cfg)
		rec.End(sp)
		if err != nil {
			return nil, false, err
		}
		sp = rec.Start(reqtrace.Root, "program.init")
		err = prog.Init(m)
		rec.End(sp)
		if err != nil {
			return nil, false, err
		}
		if err := s.loadProgram(ctx, m, prog); err != nil {
			return nil, false, err
		}
		m.SetMetrics(sm.simMetrics())
		return m, false, nil
	}
	snap, err := s.preparedSnapshot(ctx, prog, cfg)
	if err != nil {
		return nil, false, err
	}
	sp := rec.Start(reqtrace.Root, "pool.acquire")
	s.Chaos.PoolAcquire()
	m, reused, shared, err := s.pool.acquire(cfg)
	rec.AnnotateBool(sp, "reused", reused)
	rec.End(sp)
	if err != nil {
		return nil, false, err
	}
	sm.poolAcquired(reused, shared)
	sp = rec.Start(reqtrace.Root, "snapshot.restore")
	if cerr := s.Chaos.SnapshotRestore(); cerr != nil {
		// An injected restore failure must not poison the pool: the
		// machine was never restored, and every pool user restores
		// before running, so re-pooling it as-is is safe.
		rec.End(sp)
		s.pool.release(m)
		return nil, false, cerr
	}
	err = m.Restore(snap)
	if err != nil {
		// A restore mismatch means the machine does not belong to this
		// snapshot's configuration; drop it rather than re-pooling.
		rec.End(sp)
		return nil, false, err
	}
	rec.AnnotateInt(sp, "bytes", int64(m.LastRestoreBytes()))
	rec.End(sp)
	sm.restored(m.LastRestoreBytes())
	m.SetMetrics(sm.simMetrics())
	return m, true, nil
}

// checkpointMachine acquires a pooled machine restored directly to the
// given snapshot — typically a mid-run checkpoint — skipping the
// prepared-snapshot restore preparedMachine performs. A fast-forwarding
// campaign overwrites that state with its own checkpoint anyway, and
// going straight there lets consecutive sites sharing a checkpoint take
// the cheap dirty-page-only restore path instead of paying two full
// delta switches per site. Warm suites only (release via
// releaseMachine with pooled=true).
func (s *Suite) checkpointMachine(cfg sim.Config, snap *sim.Snapshot) (*sim.Machine, error) {
	sm := s.sm()
	s.Chaos.PoolAcquire()
	m, reused, shared, err := s.pool.acquire(cfg)
	if err != nil {
		return nil, err
	}
	sm.poolAcquired(reused, shared)
	if cerr := s.Chaos.SnapshotRestore(); cerr != nil {
		// As in preparedMachine: the machine was never restored, so
		// re-pooling it as-is is safe.
		s.pool.release(m)
		return nil, cerr
	}
	if err := m.Restore(snap); err != nil {
		// A restore mismatch means the machine does not belong to this
		// snapshot's configuration; drop it rather than re-pooling.
		return nil, err
	}
	sm.restored(m.LastRestoreBytes())
	m.SetMetrics(sm.simMetrics())
	return m, nil
}

// kernelMachine returns a machine in post-construction zero state for a
// handcrafted kernel (ablations, sweeps, extension programs). Warm
// suites recycle pooled machines through a pristine-state restore
// (pooled=true, release via releaseMachine); cold suites build fresh
// ones.
func (s *Suite) kernelMachine(cfg sim.Config) (*sim.Machine, bool, error) {
	sm := s.sm()
	if !s.Warm {
		m, err := sim.New(cfg)
		if err != nil {
			return nil, false, err
		}
		m.SetMetrics(sm.simMetrics())
		return m, false, nil
	}
	m, reused, shared, err := s.pool.acquirePristine(cfg)
	if err != nil {
		return nil, false, err
	}
	sm.poolAcquired(reused, shared)
	m.SetMetrics(sm.simMetrics())
	return m, true, nil
}

// releaseMachine returns a pooled machine (pooled=true from
// preparedMachine/kernelMachine) to the pool; cold machines are left for
// the garbage collector.
func (s *Suite) releaseMachine(m *sim.Machine, pooled bool) {
	if pooled && m != nil {
		s.pool.release(m)
	}
}

// PoolStats reports how many machines the warm-start layer built versus
// recycled — the denominator of the warm-start win (and the
// pool-leak/reuse check in tests).
func (s *Suite) PoolStats() (builds, reuses int64) {
	return s.pool.builds.Load(), s.pool.reuses.Load()
}

// PoolMemShared reports how many acquisitions were served by
// reconfiguring a machine pooled under a different architectural
// configuration with the same memory geometry — each one a main-memory
// allocation the sweep did not have to make.
func (s *Suite) PoolMemShared() int64 {
	return s.pool.memShared.Load()
}

// serveConfig is the configuration run-path machines use: the suite's
// architectural config with the run seed derived from the suite seed
// (the same derivation runBenchmark performs), so prewarm targets the
// exact pool entry the serving path draws from.
func (s *Suite) serveConfig() sim.Config {
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	return cfg
}

// PoolIdle reports how many machines sit idle on the pool's free lists.
func (s *Suite) PoolIdle() int {
	return s.pool.idle()
}

// PoolDrops reports how many released machines overflowed the bounded
// free list (or were dropped by shrink) and went to the collector.
func (s *Suite) PoolDrops() int64 {
	return s.pool.drops.Load()
}

// PoolPrewarm grows the run-path pool entry to n idle machines, building
// the shortfall up front so admitted requests find a machine waiting
// instead of paying a 16 MiB construction on the request path. Returns
// how many machines were built.
func (s *Suite) PoolPrewarm(n int) (int, error) {
	return s.pool.prewarm(s.serveConfig(), n)
}

// PoolShrink drops idle pooled machines until at most keep remain,
// returning how many were released to the collector. In-flight machines
// are untouched.
func (s *Suite) PoolShrink(keep int) int {
	return s.pool.shrink(keep)
}

// DropPreparedSnapshots releases every completed per-benchmark prepared
// snapshot (and cached build error), returning how many snapshots were
// dropped. The next run of each benchmark pays one snapshot.prepare
// again — the trade a quiesced service makes to hand resident image
// memory back. Entries whose singleflight build is still in flight are
// left alone.
func (s *Suite) DropPreparedSnapshots() int {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	sm := s.sm()
	dropped := 0
	for name, pe := range s.prepared {
		if !pe.done.Load() {
			continue
		}
		delete(s.prepared, name)
		if pe.snap != nil {
			sm.snapshotDropped(pe.snap)
			dropped++
		}
	}
	return dropped
}
