package bench

import (
	"fmt"

	"cambricon/internal/asm"
)

// RunMMVSweep is an extension experiment: it sweeps square MMV sizes
// through the simulator and reports achieved MACs/cycle against the
// 1024-MAC peak, showing where the h-tree overhead and the 32x32 blocking
// amortize. This is the quantitative version of the paper's §III-A
// argument that the matrix unit needs large operands to earn its area.
func RunMMVSweep(s *Suite) (*Table, error) {
	t := &Table{ID: "sweep", Title: "MMV utilization sweep (extension)",
		Header: []string{"Matrix", "MACs", "Exec cycles", "MACs/cycle", "Peak share"}}
	peak := float64(s.Config.MatrixBlocks * s.Config.MACsPerBlock)
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
		src := fmt.Sprintf(`
	SMOVE $1, #%d
	SMOVE $2, #0
	SMOVE $3, #0
	SMOVE $4, #8192
	RV    $2, $1
	MMV   $4, $1, $3, $2, $1
`, n)
		p, err := asm.Assemble(src)
		if err != nil {
			return nil, err
		}
		m, pooled, err := s.kernelMachine(s.Config)
		if err != nil {
			return nil, err
		}
		m.LoadProgram(p.Instructions)
		st, err := m.Run()
		s.releaseMachine(m, pooled)
		if err != nil {
			return nil, err
		}
		// Isolate the matrix unit's execute time from front-end and RV
		// cycles: the busy counter holds exactly the MMV occupancy.
		exec := st.MatrixBusyCycles
		macs := int64(n) * int64(n)
		rate := float64(macs) / float64(exec)
		t.AddRow(fmt.Sprintf("%dx%d", n, n), fmt.Sprintf("%d", macs),
			fmt.Sprintf("%d", exec), fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.1f%%", 100*rate/peak))
	}
	t.Notef("peak is %d MACs/cycle (Table II); small operands are h-tree-overhead bound", int(peak))
	return t, nil
}
