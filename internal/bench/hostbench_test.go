package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"cambricon/internal/fault"
)

// TestHostReportSchema pins the BENCH_host.json format: versioned
// schema, all four measurement rows, and computed cold/warm ratios.
func TestHostReportSchema(t *testing.T) {
	rep, err := RunHostBenchmarks(7, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != HostSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, HostSchema)
	}
	if rep.Benchmark != hostBenchmark {
		t.Fatalf("benchmark = %q, want %q", rep.Benchmark, hostBenchmark)
	}
	if rep.DispatchBenchmark != dispatchBenchmark {
		t.Fatalf("dispatch benchmark = %q, want %q", rep.DispatchBenchmark, dispatchBenchmark)
	}
	want := []string{"campaign-run/warm", "campaign-run/cold", "machine-acquire/warm", "machine-acquire/cold",
		"campaign-dispatch/predecoded", "campaign-dispatch/baseline",
		"campaign-fastforward/replay", "campaign-fastforward/checkpointed"}
	if len(rep.Entries) != len(want) {
		t.Fatalf("entries = %d, want %d", len(rep.Entries), len(want))
	}
	for i, e := range rep.Entries {
		if e.Name != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.Name, want[i])
		}
		if e.Runs <= 0 || e.NSPerRun <= 0 {
			t.Fatalf("entry %q not measured: %+v", e.Name, e)
		}
	}
	if rep.CampaignSpeedup <= 0 || rep.CampaignAllocRatio <= 0 ||
		rep.RestoreSpeedup <= 0 || rep.RestoreAllocRatio <= 0 ||
		rep.PredecodeSpeedup <= 0 || rep.FastForwardSpeedup <= 0 {
		t.Fatalf("ratios not computed: %+v", rep)
	}

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded HostReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if decoded.Schema != HostSchema {
		t.Fatalf("round-tripped schema = %q", decoded.Schema)
	}
}

// benchCampaign backs BenchmarkCampaignThroughput: one single-worker
// fault campaign (golden + 32 faulted runs) per iteration, over a suite
// in the given warm mode. This is the acceptance measurement — warm must
// be >= 2x faster and >= 10x fewer allocations than cold (see
// BENCH_host.json and docs/PERF.md Level 3).
func benchCampaign(b *testing.B, warm bool) {
	s := NewSuite(7)
	s.Warm = warm
	fn, err := hostCampaignFn(s, 32)
	if err != nil {
		b.Fatal(err)
	}
	if err := fn(); err != nil { // untimed: program generation, snapshot capture
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignThroughput(b *testing.B) {
	b.Run("warm", func(b *testing.B) { benchCampaign(b, true) })
	b.Run("cold", func(b *testing.B) { benchCampaign(b, false) })
}

// BenchmarkPredecodedDispatch compares a warm single-worker fault
// campaign (golden + 32 faulted runs) over the dispatch benchmark with
// pre-decoded dispatch against the per-step decode loop — the Level 4
// acceptance measurement (see BENCH_host.json's campaign-dispatch rows
// and docs/PERF.md). Simulated statistics and fault reports are
// bit-identical between the two variants; only host time moves.
func BenchmarkPredecodedDispatch(b *testing.B) {
	run := func(b *testing.B, predecode bool) {
		s := NewSuite(7)
		s.Predecode = predecode
		fn, err := hostCampaignFnFor(s, dispatchBenchmark, 32)
		if err != nil {
			b.Fatal(err)
		}
		if err := fn(); err != nil { // untimed: program generation, decode, snapshot capture
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("predecoded", func(b *testing.B) { run(b, true) })
	b.Run("baseline", func(b *testing.B) { run(b, false) })
}

// BenchmarkFastForwardCampaign compares a warm single-worker
// transient-models-only fault campaign (golden + 32 faulted runs) over
// the dispatch benchmark with checkpoint fast-forwarding against full
// prefix replay — the Level 5 acceptance measurement (see
// BENCH_host.json's campaign-fastforward rows and docs/PERF.md). Fault
// reports are byte-identical between the two variants; only host time
// moves.
func BenchmarkFastForwardCampaign(b *testing.B) {
	run := func(b *testing.B, checkpoints int) {
		s := NewSuite(7)
		fn, err := hostCampaignFnWith(s, dispatchBenchmark, fault.Campaign{
			Seed: s.Seed, Sites: 32, Workers: 1, Checkpoints: checkpoints,
			Models: []fault.Model{fault.ModelSpadBit, fault.ModelGPRBit, fault.ModelFetchBit, fault.ModelDMABit},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := fn(); err != nil { // untimed: generation, snapshots, checkpoints
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("checkpointed", func(b *testing.B) { run(b, hostFFCheckpoints) })
	b.Run("replay", func(b *testing.B) { run(b, 0) })
}

// BenchmarkWarmRestart compares acquiring a ready-to-run machine via
// snapshot restore (after a dirtying run) against the historical full
// build: sim.New + image replay + program load.
func BenchmarkWarmRestart(b *testing.B) {
	prep, warm, cold, err := hostRestoreFns(NewSuite(7))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := prep(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := warm(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := cold(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
