package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cambricon/internal/baseline/dadiannao"
	"cambricon/internal/baseline/genarch"
	"cambricon/internal/core"
	"cambricon/internal/energy"
	"cambricon/internal/workload"
)

// Experiment reproduces one table or figure.
type Experiment struct {
	// ID is the short identifier used by cmd/camrepro (-exp flag).
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment over the shared suite.
	Run func(s *Suite) (*Table, error)
}

// Experiments lists every reproduced table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"tab1", "Table I: overview of Cambricon instructions", RunTableI},
		{"tab2", "Table II: prototype accelerator parameters", RunTableII},
		{"tab3", "Table III: benchmark networks", RunTableIII},
		{"flex", "Section V-B1: flexibility (DaDianNao 3/10 vs Cambricon 10/10)", RunFlexibility},
		{"fig10", "Figure 10: code-length reduction vs GPU, x86, MIPS", RunFig10},
		{"fig11", "Figure 11: instruction-type percentages", RunFig11},
		{"fig12", "Figure 12: speedup vs x86, GPU, DaDianNao", RunFig12},
		{"fig13", "Figure 13: energy reduction vs GPU, DaDianNao", RunFig13},
		{"tab4", "Table IV: layout characteristics", RunTableIV},
		{"logreg", "Section VI: logistic-regression extension", RunLogistic},
		{"ablate", "Design-choice ablations (extension)", RunAblations},
		{"sweep", "MMV utilization sweep (extension)", RunMMVSweep},
	}
}

// ExperimentByID resolves one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunTableI regenerates the ISA overview from the live opcode table.
func RunTableI(s *Suite) (*Table, error) {
	t := &Table{ID: "tab1", Title: "Overview of Cambricon instructions",
		Header: []string{"Instruction Type", "Count", "Examples", "Operands"}}
	groups := []struct {
		label string
		typ   core.Type
		split func(core.Opcode) bool
	}{
		{"Control", core.TypeControl, nil},
		{"Data Transfer", core.TypeDataTransfer, nil},
		{"Computational / Matrix", core.TypeMatrix, nil},
		{"Computational+Logical / Vector", core.TypeVector, nil},
		{"Computational+Logical / Scalar", core.TypeScalar, nil},
	}
	total := 0
	for _, grp := range groups {
		var names []string
		operandKinds := map[string]bool{}
		for _, op := range core.Opcodes() {
			if op.Type() != grp.typ {
				continue
			}
			names = append(names, op.String())
			for _, role := range op.Roles() {
				operandKinds[role.String()] = true
			}
			if op.Format().Tail != core.TailNone {
				operandKinds["immediate"] = true
			}
		}
		total += len(names)
		t.AddRow(grp.label, fmt.Sprintf("%d", len(names)), join(names, 10),
			joinSorted(operandKinds))
	}
	t.AddRow("Total", fmt.Sprintf("%d", total), "")
	t.Notef("the paper reports 43 instructions (Section V-B1); this build defines %d", core.NumInstructions)
	return t, nil
}

// RunTableII regenerates the accelerator parameters.
func RunTableII(s *Suite) (*Table, error) {
	c := s.Config
	t := &Table{ID: "tab2", Title: "Prototype accelerator parameters (Table II)",
		Header: []string{"Parameter", "Value", "Paper"}}
	t.AddRow("issue width", fmt.Sprintf("%d", c.IssueWidth), "2")
	t.AddRow("depth of issue queue", fmt.Sprintf("%d", c.IssueQueueDepth), "24")
	t.AddRow("depth of memory queue", fmt.Sprintf("%d", c.MemQueueDepth), "32")
	t.AddRow("depth of reorder buffer", fmt.Sprintf("%d", c.ROBDepth), "64")
	t.AddRow("vector scratchpad capacity", fmt.Sprintf("%dKB", c.VectorSpadBytes>>10), "64KB")
	t.AddRow("matrix scratchpad capacity", fmt.Sprintf("%dKB (24KB x 32)", c.MatrixSpadBytes>>10), "768KB")
	t.AddRow("bank width", fmt.Sprintf("%d bits (32 x 16-bit)", c.BankBytes*8), "512 bits")
	t.AddRow("matrix function unit", fmt.Sprintf("%d (%dx%d) MACs", c.MatrixBlocks*c.MACsPerBlock, c.MatrixBlocks, c.MACsPerBlock), "1024 (32x32)")
	t.AddRow("vector function unit", fmt.Sprintf("%d lanes", c.VectorLanes), "32")
	return t, nil
}

// RunTableIII regenerates the benchmark roster.
func RunTableIII(s *Suite) (*Table, error) {
	t := &Table{ID: "tab3", Title: "Benchmark networks (Table III)",
		Header: []string{"Technique", "Network Structure", "Description"}}
	for _, b := range workload.Benchmarks() {
		t.AddRow(b.Name, b.Structure, b.Description)
	}
	return t, nil
}

// RunFlexibility regenerates the Section V-B1 coverage comparison: every
// benchmark both passes the DaDianNao expressibility check and actually
// runs (with verified outputs) on the Cambricon simulator.
func RunFlexibility(s *Suite) (*Table, error) {
	t := &Table{ID: "flex", Title: "ISA flexibility over the ten benchmarks",
		Header: []string{"Benchmark", "DaDianNao", "Cambricon", "Cambricon code length"}}
	ddn, camb := 0, 0
	for _, b := range workload.Benchmarks() {
		b := b
		ddnOK := dadiannao.CanExpress(&b)
		if ddnOK {
			ddn++
		}
		p, err := s.Program(b.Name)
		if err != nil {
			return nil, err
		}
		if _, err := s.Stats(b.Name); err != nil {
			return nil, fmt.Errorf("bench: %s failed on Cambricon-ACC: %w", b.Name, err)
		}
		camb++
		t.AddRow(b.Name, yesNo(ddnOK), "yes (verified)", fmt.Sprintf("%d", p.Len()))
	}
	t.AddRow("Total", fmt.Sprintf("%d/10", ddn), fmt.Sprintf("%d/10", camb), "")
	t.Notef("paper: DaDianNao expresses 3/10 (MLP, CNN, RBM); Cambricon all 10 (Section V-B1)")
	return t, nil
}

// Published Fig. 10 reference points.
var paperFig10 = map[string][3]float64{ // GPU, x86, MIPS
	"MLP":     {13.62, 22.62, 32.92},
	"CNN":     {1.09, 5.90, 8.27},
	"average": {6.41, 9.86, 13.38},
}

// RunFig10 regenerates the code-density comparison.
func RunFig10(s *Suite) (*Table, error) {
	t := &Table{ID: "fig10", Title: "Code-length reduction of Cambricon over GPU, x86, MIPS",
		Header: []string{"Benchmark", "Cambricon", "GPU", "x86", "MIPS",
			"GPU/Camb", "x86/Camb", "MIPS/Camb"}}
	archs := []genarch.Arch{genarch.GPU(), genarch.X86(), genarch.MIPS()}
	var ratios [3][]float64
	for _, b := range workload.Benchmarks() {
		b := b
		p, err := s.Program(b.Name)
		if err != nil {
			return nil, err
		}
		camb := p.Len()
		var lens [3]int
		row := []string{b.Name, fmt.Sprintf("%d", camb)}
		for i, a := range archs {
			lens[i] = a.CodeLength(&b)
			row = append(row, fmt.Sprintf("%d", lens[i]))
		}
		for i := range archs {
			r := float64(lens[i]) / float64(camb)
			ratios[i] = append(ratios[i], r)
			row = append(row, fmt.Sprintf("%.2fx", r))
		}
		t.Rows = append(t.Rows, row)
	}
	avgRow := []string{"average (geomean)", "", "", "", ""}
	for i := range archs {
		avgRow = append(avgRow, fmt.Sprintf("%.2fx", geomean(ratios[i])))
	}
	t.Rows = append(t.Rows, avgRow)
	t.Notef("paper averages: GPU %.2fx, x86 %.2fx, MIPS %.2fx", paperFig10["average"][0],
		paperFig10["average"][1], paperFig10["average"][2])
	t.Notef("paper MLP: %.2f/%.2f/%.2f; paper CNN: %.2f/%.2f/%.2f (GPU/x86/MIPS)",
		paperFig10["MLP"][0], paperFig10["MLP"][1], paperFig10["MLP"][2],
		paperFig10["CNN"][0], paperFig10["CNN"][1], paperFig10["CNN"][2])
	t.Notef("conservative for Cambricon: the generated programs include verification stores (per-step probabilities/draws) the paper's hand assembly would omit")
	return t, nil
}

// Published Fig. 11 average percentages.
var paperFig11 = map[core.Type]float64{
	core.TypeDataTransfer: 38.0,
	core.TypeControl:      4.8,
	core.TypeMatrix:       12.6,
	core.TypeVector:       33.8,
	core.TypeScalar:       10.9,
}

// RunFig11 regenerates the instruction-type breakdown of the generated
// Cambricon programs, both static (listing) and dynamic (executed).
func RunFig11(s *Suite) (*Table, error) {
	t := &Table{ID: "fig11", Title: "Instruction-type percentages per benchmark",
		Header: []string{"Benchmark", "mix", "data transfer", "control", "matrix", "vector", "scalar"}}
	staticSums := map[core.Type]float64{}
	dynSums := map[core.Type]float64{}
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	for _, p := range progs {
		mix := p.TypeMix()
		total := float64(p.Len())
		row := []string{p.Name, "static"}
		for _, typ := range core.Types() {
			pct := 100 * float64(mix[typ]) / total
			staticSums[typ] += pct
			row = append(row, fmt.Sprintf("%.1f%%", pct))
		}
		t.Rows = append(t.Rows, row)
		st, err := s.Stats(p.Name)
		if err != nil {
			return nil, err
		}
		dynRow := []string{"", "dynamic"}
		for _, typ := range core.Types() {
			pct := 100 * float64(st.ByType[typ]) / float64(st.Instructions)
			dynSums[typ] += pct
			dynRow = append(dynRow, fmt.Sprintf("%.1f%%", pct))
		}
		t.Rows = append(t.Rows, dynRow)
	}
	for label, sums := range map[string]map[core.Type]float64{
		"average (static)": staticSums, "average (dynamic)": dynSums} {
		row := []string{label, ""}
		for _, typ := range core.Types() {
			row = append(row, fmt.Sprintf("%.1f%%", sums[typ]/float64(len(progs))))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notef("paper averages: data transfer %.1f%%, control %.1f%%, matrix %.1f%%, vector %.1f%%, scalar %.1f%%",
		paperFig11[core.TypeDataTransfer], paperFig11[core.TypeControl],
		paperFig11[core.TypeMatrix], paperFig11[core.TypeVector], paperFig11[core.TypeScalar])
	return t, nil
}

// RunFig12 regenerates the speedup comparison.
func RunFig12(s *Suite) (*Table, error) {
	t := &Table{ID: "fig12", Title: "Speedup of Cambricon-ACC over x86-CPU, GPU, DaDianNao",
		Header: []string{"Benchmark", "Cambricon-ACC", "x86/Camb", "GPU/Camb", "DaDianNao/Camb"}}
	cpu, gpu := genarch.CPUPerf(), genarch.GPUPerf()
	var cpuR, gpuR, ddnR []float64
	for _, b := range workload.Benchmarks() {
		b := b
		tc, err := s.Seconds(b.Name)
		if err != nil {
			return nil, err
		}
		rc := cpu.Seconds(&b) / tc
		rg := gpu.Seconds(&b) / tc
		cpuR = append(cpuR, rc)
		gpuR = append(gpuR, rg)
		ddnCell := "n/a (inexpressible)"
		if cycles, _, ok, err := s.DaDianNao(b.Name); err != nil {
			return nil, err
		} else if ok {
			rd := dadiannao.DefaultConfig().Seconds(cycles) / tc
			ddnR = append(ddnR, rd)
			ddnCell = fmt.Sprintf("%.3fx", rd)
		}
		t.AddRow(b.Name, fmt.Sprintf("%.1f us", tc*1e6),
			fmt.Sprintf("%.1fx", rc), fmt.Sprintf("%.2fx", rg), ddnCell)
	}
	t.AddRow("average (geomean)", "",
		fmt.Sprintf("%.1fx", geomean(cpuR)), fmt.Sprintf("%.2fx", geomean(gpuR)),
		fmt.Sprintf("%.3fx", geomean(ddnR)))
	t.Notef("paper averages: x86 91.72x, GPU 3.09x, DaDianNao 0.955x (Cambricon-ACC 4.5%% slower on the 3 shared benchmarks)")
	return t, nil
}

// RunFig13 regenerates the energy comparison.
func RunFig13(s *Suite) (*Table, error) {
	t := &Table{ID: "fig13", Title: "Energy of GPU and DaDianNao relative to Cambricon-ACC",
		Header: []string{"Benchmark", "Cambricon-ACC", "GPU/Camb", "DaDianNao/Camb"}}
	gpu := genarch.GPUPerf()
	var gpuR, ddnR []float64
	for _, b := range workload.Benchmarks() {
		b := b
		st, err := s.Stats(b.Name)
		if err != nil {
			return nil, err
		}
		ec := energy.CambriconEnergyJoules(&st, s.Config.ClockHz)
		rg := gpu.EnergyJoules(&b) / ec
		gpuR = append(gpuR, rg)
		ddnCell := "n/a (inexpressible)"
		if _, act, ok, err := s.DaDianNao(b.Name); err != nil {
			return nil, err
		} else if ok {
			ed := energy.DaDianNaoEnergyJoules(&act, 1e9)
			rd := ed / ec
			ddnR = append(ddnR, rd)
			ddnCell = fmt.Sprintf("%.3fx", rd)
		}
		t.AddRow(b.Name, fmt.Sprintf("%.2f uJ", ec*1e6), fmt.Sprintf("%.1fx", rg), ddnCell)
	}
	t.AddRow("average (geomean)", "", fmt.Sprintf("%.1fx", geomean(gpuR)),
		fmt.Sprintf("%.3fx", geomean(ddnR)))
	t.Notef("paper averages: GPU 130.53x, DaDianNao 0.916x")
	return t, nil
}

// RunTableIV regenerates the layout table.
func RunTableIV(s *Suite) (*Table, error) {
	t := &Table{ID: "tab4", Title: "Layout characteristics of Cambricon-ACC (1 GHz, TSMC 65nm)",
		Header: []string{"Component", "Area(um^2)", "(%)", "Power(mW)", "(%)"}}
	rows := energy.Layout()
	total := rows[0]
	for _, c := range rows {
		powerPct := "-"
		if c.PowerMW > 0 {
			powerPct = fmt.Sprintf("%.2f%%", 100*c.PowerMW/total.PowerMW)
		}
		t.AddRow(c.Name, fmt.Sprintf("%.0f", c.AreaUm2),
			fmt.Sprintf("%.2f%%", 100*c.AreaUm2/total.AreaUm2),
			fmt.Sprintf("%.2f", c.PowerMW), powerPct)
	}
	t.Notef("area overhead vs re-implemented DaDianNao (55.34 mm^2): %.1f%% (paper: 1.6%%)",
		100*(energy.TotalAreaUm2/energy.DaDianNaoAreaUm2-1))
	return t, nil
}

// RunLogistic regenerates the Section VI extension: both logistic
// regression phases run on the Cambricon simulator — the prediction phase
// (dot product + scalar sigmoid, and the batched single-MMV form) and the
// training phase (one batch gradient step via MMV/VMM) — each verified
// against the float reference.
func RunLogistic(s *Suite) (*Table, error) {
	t := &Table{ID: "logreg", Title: "Logistic regression on Cambricon (Section VI)",
		Header: []string{"Phase", "Code length", "Cycles", "Verified"}}
	pred, err := codegenLogistic(s.Seed)
	if err != nil {
		return nil, err
	}
	stPred, err := runProgram(s, pred)
	if err != nil {
		return nil, err
	}
	t.AddRow("prediction (single + batch via MMV)",
		fmt.Sprintf("%d", pred.Len()), fmt.Sprintf("%d", stPred.Cycles), "yes")
	train, err := codegenLogisticTraining(s.Seed)
	if err != nil {
		return nil, err
	}
	stTrain, err := runProgram(s, train)
	if err != nil {
		return nil, err
	}
	t.AddRow("training (batch gradient step via MMV+VMM)",
		fmt.Sprintf("%d", train.Len()), fmt.Sprintf("%d", stTrain.Cycles), "yes")
	t.Notef("batch size %d, dimension %d", 32, 16)
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func join(names []string, max int) string {
	if len(names) <= max {
		return fmt.Sprintf("%v", names)
	}
	return fmt.Sprintf("%v...", names[:max])
}

func joinSorted(set map[string]bool) string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
