package bench

// Chaos-vs-suite tests (docs/ROBUSTNESS.md): injected service-path
// failures surface as ordinary per-run errors — never panics escaping
// the suite, never a poisoned machine pool.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cambricon/internal/chaos"
)

func TestChaosRestoreFailureIsAnErrorAndPoolSurvives(t *testing.T) {
	s := NewSuite(7)
	ch, err := chaos.Parse("restore-fail=1")
	if err != nil {
		t.Fatal(err)
	}
	s.Chaos = ch
	// Two failing runs in a row: each must return the injected error.
	for i := 0; i < 2; i++ {
		if _, err := s.RunOnce(context.Background(), "MLP"); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("run %d with restore-fail=1: err = %v, want ErrInjected", i, err)
		}
	}
	// Chaos off: the pooled machine the failed restores handed back must
	// still be usable — an injected restore failure must not poison it.
	s.Chaos = nil
	st, err := s.RunOnce(context.Background(), "MLP")
	if err != nil {
		t.Fatalf("run after chaos off: %v", err)
	}
	if st.Cycles <= 0 {
		t.Fatalf("run after chaos off produced %d cycles", st.Cycles)
	}
	// And the stats are the canonical ones: a chaos-free suite agrees.
	clean := NewSuite(7)
	want, err := clean.Stats("MLP")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != want.Cycles || st.Instructions != want.Instructions {
		t.Fatalf("post-chaos run (%d cycles, %d instr) != clean run (%d, %d); the pool was poisoned",
			st.Cycles, st.Instructions, want.Cycles, want.Instructions)
	}
}

func TestChaosPanicIsRecoveredIntoRunError(t *testing.T) {
	s := NewSuite(7)
	ch, err := chaos.Parse("panic=1")
	if err != nil {
		t.Fatal(err)
	}
	s.Chaos = ch
	_, err = s.RunOnce(context.Background(), "MLP")
	if err == nil {
		t.Fatal("panic=1 run returned nil error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want the recovered panic surfaced", err)
	}
	// The suite survives: with chaos off the next run succeeds.
	s.Chaos = nil
	if _, err := s.RunOnce(context.Background(), "MLP"); err != nil {
		t.Fatalf("run after recovered panic: %v", err)
	}
}
