package bench

// Tests pinning the machine pool's cross-configuration memory sharing:
// a pool miss for one architectural configuration steals an idle machine
// pooled under another configuration with the same memory geometry and
// Reconfigures it, and the reconfigured machine is indistinguishable
// from a freshly built one.

import (
	"reflect"
	"runtime/debug"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/metrics"
	"cambricon/internal/sim"
)

// poolKernel exercises scalar, vector and matrix paths so a stale
// machine would show up in the statistics.
const poolKernel = `
	SMOVE $1, #64
	SMOVE $2, #0
	SMOVE $3, #0
	SMOVE $4, #8192
	RV    $2, $1
	MMV   $4, $1, $3, $2, $1
	VAV   $3, $1, $2, $2
`

// runPoolKernel runs the kernel on a suite-pooled machine for cfg and
// returns its statistics.
func runPoolKernel(t *testing.T, s *Suite, cfg sim.Config) sim.Stats {
	t.Helper()
	p, err := asm.Assemble(poolKernel)
	if err != nil {
		t.Fatal(err)
	}
	m, pooled, err := s.kernelMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p.Instructions)
	st, err := m.Run()
	s.releaseMachine(m, pooled)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// freshKernelStats is the reference: the same kernel on a machine built
// directly with sim.New.
func freshKernelStats(t *testing.T, cfg sim.Config) sim.Stats {
	t.Helper()
	p, err := asm.Assemble(poolKernel)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p.Instructions)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPoolCrossConfigMemSharing pins the sharing path end to end: two
// configurations differing only in architectural (non-memory) knobs
// share one machine, the share is counted, and the reconfigured
// machine's statistics are bit-identical to a fresh build's.
func TestPoolCrossConfigMemSharing(t *testing.T) {
	// Idle machines live in a sync.Pool: sharing is an optimization, not
	// a guarantee. Under the race detector sync.Pool randomly drops Puts
	// (so exact steal counts are non-deterministic by design), and the
	// garbage collector may drain the pool between a release and the
	// next acquire. Skip in race mode and hold GC off for the duration;
	// TestPoolNoShareAcrossMemGeometry (drop-tolerant) still runs
	// everywhere.
	if raceEnabled {
		t.Skip("sync.Pool drops random Puts under the race detector; steal counts are not deterministic")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	reg := metrics.New()
	s := NewSuite(11)
	s.Metrics = reg

	cfgA := s.Config
	cfgB := cfgA
	cfgB.IssueWidth = cfgA.IssueWidth * 2
	cfgB.VectorLanes = cfgA.VectorLanes / 2

	stA := runPoolKernel(t, s, cfgA)
	stB := runPoolKernel(t, s, cfgB) // A's machine is idle: must be stolen

	if got := s.PoolMemShared(); got != 1 {
		t.Fatalf("PoolMemShared = %d, want 1", got)
	}
	if got := reg.Counter(MetricPoolMemShared, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricPoolMemShared, got)
	}
	builds, _ := s.PoolStats()
	if builds != 1 {
		t.Fatalf("pool builds = %d, want 1 (second config must share)", builds)
	}

	if want := freshKernelStats(t, cfgA); !reflect.DeepEqual(stA, want) {
		t.Fatalf("cfgA pooled stats diverge from fresh build:\n pooled %+v\n fresh  %+v", stA, want)
	}
	if want := freshKernelStats(t, cfgB); !reflect.DeepEqual(stB, want) {
		t.Fatalf("cfgB shared-machine stats diverge from fresh build:\n shared %+v\n fresh  %+v", stB, want)
	}

	// And back again: cfgB's machine is now the idle one; cfgA steals it.
	stA2 := runPoolKernel(t, s, cfgA)
	if !reflect.DeepEqual(stA2, stA) {
		t.Fatalf("cfgA rerun on re-stolen machine diverges:\n got  %+v\n want %+v", stA2, stA)
	}
	if got := s.PoolMemShared(); got != 2 {
		t.Fatalf("PoolMemShared after round trip = %d, want 2", got)
	}
}

// TestPoolNoShareAcrossMemGeometry pins the guard: a configuration with
// a different memory geometry never steals, it builds.
func TestPoolNoShareAcrossMemGeometry(t *testing.T) {
	s := NewSuite(11)
	cfgA := s.Config
	cfgB := cfgA
	cfgB.MainMemBytes = cfgA.MainMemBytes * 2

	runPoolKernel(t, s, cfgA)
	runPoolKernel(t, s, cfgB)

	if got := s.PoolMemShared(); got != 0 {
		t.Fatalf("PoolMemShared = %d, want 0 across memory geometries", got)
	}
	builds, _ := s.PoolStats()
	if builds != 2 {
		t.Fatalf("pool builds = %d, want 2", builds)
	}
}
