package bench

// Tests pinning the machine pool's cross-configuration memory sharing:
// a pool miss for one architectural configuration steals an idle machine
// pooled under another configuration with the same memory geometry and
// Reconfigures it, and the reconfigured machine is indistinguishable
// from a freshly built one.

import (
	"context"
	"reflect"
	"testing"

	"cambricon/internal/asm"
	"cambricon/internal/metrics"
	"cambricon/internal/sim"
)

// poolKernel exercises scalar, vector and matrix paths so a stale
// machine would show up in the statistics.
const poolKernel = `
	SMOVE $1, #64
	SMOVE $2, #0
	SMOVE $3, #0
	SMOVE $4, #8192
	RV    $2, $1
	MMV   $4, $1, $3, $2, $1
	VAV   $3, $1, $2, $2
`

// runPoolKernel runs the kernel on a suite-pooled machine for cfg and
// returns its statistics.
func runPoolKernel(t *testing.T, s *Suite, cfg sim.Config) sim.Stats {
	t.Helper()
	p, err := asm.Assemble(poolKernel)
	if err != nil {
		t.Fatal(err)
	}
	m, pooled, err := s.kernelMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p.Instructions)
	st, err := m.Run()
	s.releaseMachine(m, pooled)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// freshKernelStats is the reference: the same kernel on a machine built
// directly with sim.New.
func freshKernelStats(t *testing.T, cfg sim.Config) sim.Stats {
	t.Helper()
	p, err := asm.Assemble(poolKernel)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p.Instructions)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPoolCrossConfigMemSharing pins the sharing path end to end: two
// configurations differing only in architectural (non-memory) knobs
// share one machine, the share is counted, and the reconfigured
// machine's statistics are bit-identical to a fresh build's.
func TestPoolCrossConfigMemSharing(t *testing.T) {
	// Idle machines live on explicit bounded free lists, so reuse and
	// steal counts are deterministic — no GC pinning, no race-mode skip
	// (both were needed when retention went through a sync.Pool, which
	// drops Puts randomly under the race detector).
	reg := metrics.New()
	s := NewSuite(11)
	s.Metrics = reg

	cfgA := s.Config
	cfgB := cfgA
	cfgB.IssueWidth = cfgA.IssueWidth * 2
	cfgB.VectorLanes = cfgA.VectorLanes / 2

	stA := runPoolKernel(t, s, cfgA)
	stB := runPoolKernel(t, s, cfgB) // A's machine is idle: must be stolen

	if got := s.PoolMemShared(); got != 1 {
		t.Fatalf("PoolMemShared = %d, want 1", got)
	}
	if got := reg.Counter(MetricPoolMemShared, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricPoolMemShared, got)
	}
	builds, _ := s.PoolStats()
	if builds != 1 {
		t.Fatalf("pool builds = %d, want 1 (second config must share)", builds)
	}

	if want := freshKernelStats(t, cfgA); !reflect.DeepEqual(stA, want) {
		t.Fatalf("cfgA pooled stats diverge from fresh build:\n pooled %+v\n fresh  %+v", stA, want)
	}
	if want := freshKernelStats(t, cfgB); !reflect.DeepEqual(stB, want) {
		t.Fatalf("cfgB shared-machine stats diverge from fresh build:\n shared %+v\n fresh  %+v", stB, want)
	}

	// And back again: cfgB's machine is now the idle one; cfgA steals it.
	stA2 := runPoolKernel(t, s, cfgA)
	if !reflect.DeepEqual(stA2, stA) {
		t.Fatalf("cfgA rerun on re-stolen machine diverges:\n got  %+v\n want %+v", stA2, stA)
	}
	if got := s.PoolMemShared(); got != 2 {
		t.Fatalf("PoolMemShared after round trip = %d, want 2", got)
	}
}

// TestPoolFreeListBound pins the explicit retention bound: releases
// beyond the free-list capacity drop machines instead of growing it,
// and a reuse is guaranteed (not best-effort) below the bound.
func TestPoolFreeListBound(t *testing.T) {
	var p machinePool
	cfg := sim.DefaultConfig()
	e, err := p.entry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cap(e.free) != defaultPoolMaxIdle {
		t.Fatalf("free-list capacity = %d, want %d", cap(e.free), defaultPoolMaxIdle)
	}

	// Acquire two, release both: both must come back (deterministically).
	m1, reused, _, err := p.acquire(cfg)
	if err != nil || reused {
		t.Fatalf("first acquire: reused=%v err=%v, want fresh build", reused, err)
	}
	m2, _, _, err := p.acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.release(m1)
	p.release(m2)
	if got := p.idle(); got != 2 {
		t.Fatalf("idle after two releases = %d, want 2", got)
	}
	if m, reused, _, _ := p.acquire(cfg); !reused || m != m2 {
		t.Fatalf("LIFO reuse: got %p reused=%v, want most recently released %p", m, reused, m2)
	}

	// Fill the free list to capacity, then overflow by one: the overflow
	// release is dropped and counted.
	if _, err := p.prewarm(cfg, defaultPoolMaxIdle); err != nil {
		t.Fatal(err)
	}
	if got := p.idle(); got != defaultPoolMaxIdle {
		t.Fatalf("idle after prewarm = %d, want %d", got, defaultPoolMaxIdle)
	}
	overflow, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.release(overflow)
	if got := p.idle(); got != defaultPoolMaxIdle {
		t.Fatalf("idle after overflow release = %d, want %d (bounded)", got, defaultPoolMaxIdle)
	}
	if got := p.drops.Load(); got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
}

// TestPoolPrewarmShrink pins the autoscaler's levers through the Suite
// API: prewarm builds machines ahead of demand, shrink releases them,
// and a post-shrink run still produces bit-identical statistics.
func TestPoolPrewarmShrink(t *testing.T) {
	s := NewSuite(11)
	built, err := s.PoolPrewarm(3)
	if err != nil {
		t.Fatal(err)
	}
	if built != 3 || s.PoolIdle() != 3 {
		t.Fatalf("PoolPrewarm built %d, idle %d, want 3 and 3", built, s.PoolIdle())
	}
	// Prewarming to a target already met builds nothing.
	if built, _ := s.PoolPrewarm(2); built != 0 {
		t.Fatalf("redundant prewarm built %d, want 0", built)
	}

	// A warm run must now reuse a prewarmed machine, not build.
	want := freshKernelStats(t, s.serveConfig())
	st := runPoolKernel(t, s, s.serveConfig())
	if !reflect.DeepEqual(st, want) {
		t.Fatalf("prewarmed-machine stats diverge:\n got  %+v\n want %+v", st, want)
	}
	builds, reuses := s.PoolStats()
	if builds != 3 || reuses != 1 {
		t.Fatalf("builds=%d reuses=%d after prewarmed run, want 3 and 1", builds, reuses)
	}

	if dropped := s.PoolShrink(1); dropped != 2 {
		t.Fatalf("PoolShrink(1) dropped %d, want 2", dropped)
	}
	if s.PoolIdle() != 1 {
		t.Fatalf("idle after shrink = %d, want 1", s.PoolIdle())
	}
	if dropped := s.PoolShrink(0); dropped != 1 {
		t.Fatalf("PoolShrink(0) dropped %d, want 1", dropped)
	}

	// The pool floor is not a cliff: the next run rebuilds and matches.
	st2 := runPoolKernel(t, s, s.serveConfig())
	if !reflect.DeepEqual(st2, want) {
		t.Fatalf("post-shrink stats diverge:\n got  %+v\n want %+v", st2, want)
	}
}

// TestDropPreparedSnapshots pins snapshot release accounting: dropping
// hands back the gauge-tracked bytes and the next run rebuilds the
// snapshot with identical results.
func TestDropPreparedSnapshots(t *testing.T) {
	reg := metrics.New()
	s := NewSuite(11)
	s.Metrics = reg

	st, err := s.Stats("MLP")
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge(MetricSnapPrepared, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1 after a run", MetricSnapPrepared, got)
	}
	if dropped := s.DropPreparedSnapshots(); dropped != 1 {
		t.Fatalf("DropPreparedSnapshots = %d, want 1", dropped)
	}
	if got := reg.Gauge(MetricSnapPrepared, "").Value(); got != 0 {
		t.Fatalf("%s = %d, want 0 after drop", MetricSnapPrepared, got)
	}
	if got := reg.Gauge(MetricSnapResident, "").Value(); got != 0 {
		t.Fatalf("%s = %d, want 0 after drop", MetricSnapResident, got)
	}
	if dropped := s.DropPreparedSnapshots(); dropped != 0 {
		t.Fatalf("second DropPreparedSnapshots = %d, want 0", dropped)
	}

	// RunOnce (the service path, no singleflight cache) rebuilds the
	// snapshot and produces the same simulated statistics.
	st2, err := s.RunOnce(context.Background(), "MLP")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st2, st) {
		t.Fatalf("post-drop rerun diverges:\n got  %+v\n want %+v", st2, st)
	}
	if got := reg.Gauge(MetricSnapPrepared, "").Value(); got != 1 {
		t.Fatalf("%s = %d, want 1 after rebuild", MetricSnapPrepared, got)
	}
}

// TestPoolNoShareAcrossMemGeometry pins the guard: a configuration with
// a different memory geometry never steals, it builds.
func TestPoolNoShareAcrossMemGeometry(t *testing.T) {
	s := NewSuite(11)
	cfgA := s.Config
	cfgB := cfgA
	cfgB.MainMemBytes = cfgA.MainMemBytes * 2

	runPoolKernel(t, s, cfgA)
	runPoolKernel(t, s, cfgB)

	if got := s.PoolMemShared(); got != 0 {
		t.Fatalf("PoolMemShared = %d, want 0 across memory geometries", got)
	}
	builds, _ := s.PoolStats()
	if builds != 2 {
		t.Fatalf("pool builds = %d, want 2", builds)
	}
}
