package bench

// Tests pinning the service-metrics contract on the suite: attaching a
// registry never changes simulated statistics, the counters it fills
// agree with what actually happened, and with no registry attached the
// instrumentation hooks are allocation-free no-ops.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"cambricon/internal/metrics"
	"cambricon/internal/sim"
)

// TestMeteredStatsBitIdentical pins that metering is observation only:
// a suite with a registry attached reports the exact statistics an
// unmetered suite reports.
func TestMeteredStatsBitIdentical(t *testing.T) {
	plain := NewSuite(7)
	metered := NewSuite(7)
	metered.Metrics = metrics.New()
	for _, name := range warmBenchmarks {
		p, err := plain.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := metered.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, m) {
			t.Fatalf("%s: metered stats %+v != plain stats %+v", name, m, p)
		}
	}
}

// TestSuiteMetricsCountRuns pins the counter semantics end to end: runs,
// cache hits, pool traffic, snapshot gauges and restore counters all
// reflect the work the suite actually did.
func TestSuiteMetricsCountRuns(t *testing.T) {
	reg := metrics.New()
	s := NewSuite(7)
	s.Metrics = reg
	if _, err := s.Stats("MLP"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stats("MLP"); err != nil { // singleflight cache
		t.Fatal(err)
	}
	if _, err := s.RunOnce(context.Background(), "MLP"); err != nil { // uncached
		t.Fatal(err)
	}
	c := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := c(MetricRunsStarted); got != 2 {
		t.Fatalf("runs started = %d, want 2 (one cached read, one RunOnce)", got)
	}
	if got := c(MetricRunsCompleted); got != 2 {
		t.Fatalf("runs completed = %d, want 2", got)
	}
	if got := c(MetricCacheHits); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if got := c(MetricRunsFailed); got != 0 {
		t.Fatalf("runs failed = %d, want 0", got)
	}
	// The second real run restored a pooled machine from the prepared
	// snapshot instead of building one.
	if hits, misses := c(MetricPoolHits), c(MetricPoolMisses); hits == 0 || misses == 0 {
		t.Fatalf("pool hits=%d misses=%d, want both nonzero", hits, misses)
	}
	if got := c(MetricRestores); got == 0 {
		t.Fatal("no snapshot restores counted")
	}
	if got := c(MetricRestoreBytes); got == 0 {
		t.Fatal("no restore bytes counted")
	}
	g := func(name string) int64 { return reg.Gauge(name, "").Value() }
	if got := g(MetricSnapPrepared); got != 1 {
		t.Fatalf("snapshots prepared = %d, want 1", got)
	}
	resident, dense := g(MetricSnapResident), g(MetricSnapDense)
	if resident <= 0 || dense <= resident {
		t.Fatalf("snapshot gauges resident=%d dense=%d, want 0 < resident < dense", resident, dense)
	}
	// The per-benchmark histograms saw both real runs.
	h := reg.Histogram(MetricRunCycles, "", cycleBuckets, metrics.L("benchmark", "MLP"))
	if got := h.Count(); got != 2 {
		t.Fatalf("cycle histogram count = %d, want 2", got)
	}
	// A failed run lands in the failure counter, not the histograms.
	if _, err := s.RunOnce(context.Background(), "no-such-benchmark"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if got := c(MetricRunsFailed); got != 1 {
		t.Fatalf("runs failed = %d, want 1", got)
	}
}

// TestSuiteMetricsNilHooksZeroAllocs pins the nil contract at the suite
// layer: every instrumentation hook on a nil *suiteMetrics (no registry
// attached) is a zero-allocation no-op, so unmetered hot paths pay
// nothing.
func TestSuiteMetricsNilHooksZeroAllocs(t *testing.T) {
	var sm *suiteMetrics
	snap := &sim.Snapshot{}
	allocs := testing.AllocsPerRun(100, func() {
		sm.runStarted()
		sm.runDone("MLP", sim.Stats{Cycles: 1}, time.Microsecond, nil)
		sm.cacheHit()
		sm.poolAcquired(true, false)
		sm.poolAcquired(true, true)
		sm.poolAcquired(false, false)
		sm.restored(4096)
		sm.snapshotPrepared(snap)
		if sm.simMetrics() != nil {
			t.Fatal("nil suiteMetrics returned a sim.Metrics bundle")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil instrumentation hooks allocated %v per run, want 0", allocs)
	}
}
