package bench

import (
	"strconv"
	"strings"
	"testing"

	"cambricon/internal/workload"
)

func newTestSuite() *Suite { return NewSuite(7) }

func TestAllExperimentsRun(t *testing.T) {
	s := newTestSuite()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Error("empty table")
			}
			if out := tbl.Render(); !strings.Contains(out, e.ID) {
				t.Error("render missing experiment id")
			}
			if md := tbl.Markdown(); !strings.Contains(md, "|") {
				t.Error("markdown render broken")
			}
		})
	}
}

func TestExperimentByID(t *testing.T) {
	if _, ok := ExperimentByID("fig12"); !ok {
		t.Error("fig12 missing")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestFlexibilityMatchesPaper(t *testing.T) {
	s := newTestSuite()
	tbl, err := RunFlexibility(s)
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[1] != "3/10" || last[2] != "10/10" {
		t.Errorf("flexibility totals %v, want 3/10 and 10/10", last)
	}
}

func TestFig10ShapeHolds(t *testing.T) {
	s := newTestSuite()
	tbl, err := RunFig10(s)
	if err != nil {
		t.Fatal(err)
	}
	// Structural expectations from the paper: for every benchmark
	// Cambricon is densest and MIPS sparsest; CNN has the smallest
	// GPU/Cambricon ratio of all benchmarks (Section V-B2).
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", cell)
		}
		return v
	}
	var cnnGPU float64
	minGPU := 1e9
	for _, row := range tbl.Rows {
		if row[0] == "average (geomean)" {
			continue
		}
		gpuR, x86R, mipsR := parse(row[5]), parse(row[6]), parse(row[7])
		if gpuR <= 1 {
			t.Errorf("%s: Cambricon should be denser than GPU (%v)", row[0], gpuR)
		}
		if !(mipsR > x86R && x86R > gpuR) {
			t.Errorf("%s: want MIPS > x86 > GPU ratios, got %v/%v/%v",
				row[0], mipsR, x86R, gpuR)
		}
		if row[0] == "CNN" {
			cnnGPU = gpuR
		}
		if gpuR < minGPU {
			minGPU = gpuR
		}
	}
	if cnnGPU != minGPU {
		t.Errorf("CNN should have the smallest GPU/Cambricon ratio (got %v, min %v)", cnnGPU, minGPU)
	}
}

func TestFig11PercentagesSumToHundred(t *testing.T) {
	s := newTestSuite()
	tbl, err := RunFig11(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		var sum float64
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			sum += v
		}
		if sum < 99.4 || sum > 100.6 {
			t.Errorf("%s %s: percentages sum to %v", row[0], row[1], sum)
		}
	}
}

func TestFig12ShapeHolds(t *testing.T) {
	s := newTestSuite()
	tbl, err := RunFig12(s)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) (float64, bool) {
		if !strings.HasSuffix(cell, "x") {
			return 0, false
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		return v, err == nil
	}
	ddnCount := 0
	for _, row := range tbl.Rows {
		if row[0] == "average (geomean)" {
			continue
		}
		cpuR, ok1 := parse(row[2])
		gpuR, ok2 := parse(row[3])
		if !ok1 || !ok2 {
			t.Fatalf("bad row %v", row)
		}
		// Who wins: Cambricon-ACC beats both general-purpose machines on
		// every benchmark, and the CPU is the slowest.
		if cpuR <= 1 {
			t.Errorf("%s: Cambricon should beat the CPU (ratio %v)", row[0], cpuR)
		}
		if cpuR <= gpuR {
			t.Errorf("%s: CPU ratio (%v) should exceed GPU ratio (%v)", row[0], cpuR, gpuR)
		}
		if rd, ok := parse(row[4]); ok {
			ddnCount++
			// DaDianNao is at least as fast (ratio <= 1) on the shared
			// benchmarks.
			if rd > 1.001 {
				t.Errorf("%s: DaDianNao ratio %v should be <= 1", row[0], rd)
			}
		}
	}
	if ddnCount != 3 {
		t.Errorf("DaDianNao should run exactly 3 benchmarks, got %d", ddnCount)
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	s := newTestSuite()
	tbl, err := RunFig13(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[0] == "average (geomean)" {
			continue
		}
		cell := strings.TrimSuffix(row[2], "x")
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if v <= 1 {
			t.Errorf("%s: GPU energy ratio %v should exceed 1", row[0], v)
		}
	}
}

func TestSuiteCachesPrograms(t *testing.T) {
	s := newTestSuite()
	p1, err := s.Programs()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Programs()
	if &p1[0] != &p2[0] {
		t.Error("programs regenerated instead of cached")
	}
	if _, err := s.Program("MLP"); err != nil {
		t.Error(err)
	}
	if _, err := s.Program("nope"); err == nil {
		t.Error("unknown program resolved")
	}
}

func TestSuiteStatsCached(t *testing.T) {
	s := newTestSuite()
	st1, err := s.Stats("MLP")
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := s.Stats("MLP")
	if st1.Cycles != st2.Cycles {
		t.Error("cached stats differ")
	}
}

func TestDaDianNaoSuiteCoverage(t *testing.T) {
	s := newTestSuite()
	for _, b := range workload.Benchmarks() {
		_, _, ok, err := s.DaDianNao(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		want := b.Name == "MLP" || b.Name == "CNN" || b.Name == "RBM"
		if ok != want {
			t.Errorf("%s: expressible=%v, want %v", b.Name, ok, want)
		}
	}
}

func TestAblationsFavorThePaperDesign(t *testing.T) {
	s := newTestSuite()
	tbl, err := RunAblations(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d ablation rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		slow := strings.TrimSuffix(row[4], "x")
		v, err := strconv.ParseFloat(slow, 64)
		if err != nil {
			t.Fatalf("bad slowdown cell %q", row[4])
		}
		// Every ablation must cost cycles: the paper's design choice wins.
		if v <= 1.0 {
			t.Errorf("%s: ablated design not slower (%.2fx)", row[0], v)
		}
	}
}

// TestCycleCountGuardrails pins each benchmark's simulated latency to a
// coarse range: any order-of-magnitude regression in either the code
// generators or the timing model trips these without churning on small
// model adjustments.
func TestCycleCountGuardrails(t *testing.T) {
	bounds := map[string][2]int64{
		"MLP":                {1_000, 10_000},
		"CNN":                {8_000, 80_000},
		"RNN":                {800, 10_000},
		"LSTM":               {2_000, 25_000},
		"Autoencoder":        {4_000, 40_000},
		"Sparse Autoencoder": {4_000, 40_000},
		"BM":                 {30_000, 300_000},
		"RBM":                {8_000, 80_000},
		"SOM":                {10_000, 100_000},
		"HNN":                {400, 5_000},
	}
	s := newTestSuite()
	for name, b := range bounds {
		st, err := s.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles < b[0] || st.Cycles > b[1] {
			t.Errorf("%s: %d cycles outside guardrail [%d, %d]", name, st.Cycles, b[0], b[1])
		}
	}
}

func TestTableRenderToleratesRaggedRows(t *testing.T) {
	tbl := &Table{ID: "x", Title: "ragged", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2", "3") // wider than the header
	tbl.AddRow("only")
	out := tbl.Render()
	if !strings.Contains(out, "3") || !strings.Contains(out, "only") {
		t.Errorf("ragged render lost cells:\n%s", out)
	}
	if md := tbl.Markdown(); !strings.Contains(md, "| 1 | 2 | 3 |") {
		t.Errorf("markdown lost cells:\n%s", md)
	}
}
