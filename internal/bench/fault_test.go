package bench

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"cambricon/internal/fault"
)

// mlpTarget returns the MLP benchmark's fault target from a fresh
// suite (the smallest Table III program, so campaigns stay fast).
func mlpTarget(t *testing.T) fault.Target {
	t.Helper()
	targets, err := NewSuite(7).FaultTargets()
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range targets {
		if tgt.Name() == "MLP" {
			return tgt
		}
	}
	t.Fatal("no MLP target")
	return nil
}

func TestFaultTargetGoldenRun(t *testing.T) {
	tgt := mlpTarget(t)
	obs := tgt.Run(nil, 0)
	if obs.Err != nil || obs.Crashed || obs.Hung {
		t.Fatalf("golden run failed: %+v", obs)
	}
	if obs.Cycles == 0 || obs.Instructions == 0 || len(obs.Output) == 0 {
		t.Fatalf("golden run incomplete: %+v", obs)
	}
	g := obs.Geometry
	if g.Instructions != obs.Instructions || g.GPRs == 0 ||
		g.VectorSpadWords == 0 || g.MatrixSpadWords == 0 ||
		g.VectorLanes == 0 || g.MatrixLanes == 0 {
		t.Errorf("geometry not filled: %+v", g)
	}
	// Repeatable: two golden runs are byte-identical.
	again := tgt.Run(nil, 0)
	if again.Cycles != obs.Cycles || !bytes.Equal(again.Output, obs.Output) {
		t.Error("golden run is not repeatable")
	}
}

func TestFaultTargetHangsOnTinyBudget(t *testing.T) {
	tgt := mlpTarget(t)
	obs := tgt.Run(nil, 3)
	if !obs.Hung {
		t.Fatalf("3-cycle budget did not hang: %+v", obs)
	}
	if obs.Err == nil || !strings.Contains(obs.Err.Error(), "watchdog") {
		t.Errorf("hang carries no watchdog diagnostic: %v", obs.Err)
	}
}

// TestCampaignByteIdenticalReports is the campaign determinism
// acceptance criterion: same seed, worker counts 1 and 4, byte-for-byte
// identical JSON reports; a different seed produces a different report.
func TestCampaignByteIdenticalReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	run := func(seed uint64, workers int) []byte {
		t.Helper()
		targets, err := NewSuite(7).FaultTargets()
		if err != nil {
			t.Fatal(err)
		}
		c := fault.Campaign{Seed: seed, Sites: 10, Workers: workers}
		rep, err := c.Run(context.Background(), targets[:2])
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run(42, 1)
	b := run(42, 4)
	if !bytes.Equal(a, b) {
		t.Error("same seed, different worker counts: reports differ")
	}
	if bytes.Equal(a, run(43, 4)) {
		t.Error("different seeds produced identical reports")
	}
	if !bytes.Contains(a, []byte(fault.Schema)) {
		t.Errorf("report does not declare schema %q", fault.Schema)
	}
}

// TestCampaignCancellationNoLeak cancels a campaign mid-flight and
// checks both the partial-result contract and that no worker goroutine
// outlives the call.
func TestCampaignCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	targets, err := NewSuite(7).FaultTargets()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := fault.Campaign{Seed: 42, Sites: 4, Workers: 2}
	if _, err := c.Run(ctx, targets[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	// Give any leaked workers a moment to show up, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after cancelled campaign", before, after)
	}
}

// TestRunAllCancelledMidRunPartialResults cancels RunAll after the
// first benchmark completes: the returned slice must still carry the
// completed results, the error must be the context's, and no worker
// may leak.
func TestRunAllCancelledMidRunPartialResults(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewSuite(7)
	ctx, cancel := context.WithCancel(context.Background())
	// Warm one benchmark, then cancel: dispatching stops but the
	// completed entry stays visible in the results.
	if _, err := s.Stats("MLP"); err != nil {
		t.Fatal(err)
	}
	cancel()
	results, err := s.RunAll(ctx, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll = %v, want context.Canceled", err)
	}
	if len(results) == 0 {
		t.Fatal("cancelled RunAll returned no result slots")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after cancelled RunAll", before, after)
	}
}

// TestStatsCtxCancellationNotCached checks the singleflight retry
// contract: a cancelled StatsCtx run is not poisoned into the cache —
// the next call with a live context succeeds.
func TestStatsCtxCancellationNotCached(t *testing.T) {
	s := NewSuite(7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.StatsCtx(ctx, "MLP"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled StatsCtx = %v, want context.Canceled", err)
	}
	if _, err := s.StatsCtx(context.Background(), "MLP"); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

// panickyTarget crashes on every non-golden run; the campaign must
// classify those as crashes rather than dying.
type panickyTarget struct{ inner fault.Target }

func (p *panickyTarget) Name() string { return p.inner.Name() }
func (p *panickyTarget) Run(inj fault.Injector, maxCycles int64) fault.Observation {
	obs := p.inner.Run(nil, maxCycles)
	if inj != nil {
		obs.Crashed = true
		obs.Err = errors.New("simulated crash")
	}
	return obs
}

func TestCampaignClassifiesCrashes(t *testing.T) {
	tgt := &panickyTarget{inner: mlpTarget(t)}
	c := fault.Campaign{Seed: 1, Sites: 5, Workers: 2}
	rep, err := c.Run(context.Background(), []fault.Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Total.Crash; got != 5 {
		t.Errorf("crash tally = %d, want 5\n%s", got, rep.Render())
	}
}
