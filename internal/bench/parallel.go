package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cambricon/internal/sim"
	"cambricon/internal/workload"
)

// Result is one benchmark's outcome from a parallel suite run.
type Result struct {
	// Name is the Table III benchmark name.
	Name string
	// Stats is the Cambricon-ACC simulation result.
	Stats sim.Stats
	// DDNCycles is the DaDianNao baseline cycle count; DDNOK reports
	// whether the benchmark is expressible on the baseline at all.
	DDNCycles int64
	DDNOK     bool
	// HostNS is the host wall-clock time this worker spent on the
	// benchmark (simulation + baseline). Near zero when served from the
	// suite cache.
	HostNS int64
	// Err is the per-benchmark failure, if any.
	Err error
}

// RunAll simulates the ten Table III benchmarks and their DaDianNao
// baselines across a pool of workers, filling the suite's caches so that
// subsequent experiment runs (Figs. 10-13) are pure cache reads.
//
// workers <= 0 means GOMAXPROCS. Results are returned in workload order
// regardless of worker count or scheduling, and — because each Machine is
// freshly constructed per benchmark and shares no state — the simulated
// statistics are bit-identical for every worker count.
//
// The first per-benchmark error is returned after all workers drain, with
// every completed Result still populated. Cancelling ctx stops dispatching
// new benchmarks and returns ctx.Err(); already-running simulations stop at
// their next cancellation poll point and are not cached, so every worker
// goroutine exits promptly. A panic inside one benchmark is recovered into
// that benchmark's Result.Err instead of crashing the pool.
func (s *Suite) RunAll(ctx context.Context, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Generate the programs up front: generation is shared by every
	// benchmark, so doing it here keeps the workers purely simulation-bound
	// and surfaces generation errors once instead of ten times.
	if _, err := s.Programs(); err != nil {
		return nil, err
	}
	benches := workload.Benchmarks()
	results := make([]Result, len(benches))
	for i := range results {
		results[i].Name = benches[i].Name
	}
	if workers > len(benches) {
		workers = len(benches)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := &results[i]
				start := time.Now()
				// A panic in one benchmark becomes that benchmark's
				// error; the worker survives to drain its queue.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							r.Err = fmt.Errorf("bench: %s: panic: %v", r.Name, rec)
						}
					}()
					r.Stats, r.Err = s.StatsCtx(ctx, r.Name)
					if r.Err == nil {
						cycles, _, ok, err := s.DaDianNao(r.Name)
						r.DDNCycles, r.DDNOK, r.Err = cycles, ok, err
					}
				}()
				r.HostNS = time.Since(start).Nanoseconds()
			}
		}()
	}
	var ctxErr error
	for i := range benches {
		// Checked before the select so an already-cancelled context
		// deterministically dispatches nothing.
		if ctxErr = ctx.Err(); ctxErr != nil {
			break
		}
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
		case jobs <- i:
		}
		if ctxErr != nil {
			break
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		return results, ctxErr
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("bench: %s: %w", results[i].Name, results[i].Err)
		}
	}
	return results, nil
}
