//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector. sync.Pool deliberately drops a random quarter of Puts in
// race mode, so tests asserting exact pool hit/steal counts cannot be
// deterministic there.
const raceEnabled = true
