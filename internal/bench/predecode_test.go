package bench

// Tests pinning the pre-decoded dispatch layer's contract (docs/PERF.md,
// Level 4): simulated results are bit-identical with and without
// pre-decode across every Table III workload, fault-campaign reports are
// byte-identical, the decode cache singleflights across machines and
// counts its traffic, and the warm decoded hot loop is allocation-free.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"cambricon/internal/metrics"
	"cambricon/internal/sim"
)

func predecodeOff(seed uint64) *Suite {
	s := NewSuite(seed)
	s.Predecode = false
	return s
}

// TestPredecodeBitIdenticalTableIII runs every Table III workload through
// both dispatch modes and requires identical statistics — cycles, stall
// attribution, opcode histograms, everything — plus a passing output
// verification on both sides. This is the acceptance check that the
// dispatch layer is a host-time optimization only.
func TestPredecodeBitIdenticalTableIII(t *testing.T) {
	dec, base := NewSuite(7), predecodeOff(7)
	progs, err := dec.Programs()
	if err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, p := range progs {
		d, err := dec.Stats(p.Name)
		if err != nil {
			t.Fatalf("%s predecoded: %v", p.Name, err)
		}
		b, err := base.Stats(p.Name)
		if err != nil {
			t.Fatalf("%s baseline: %v", p.Name, err)
		}
		if !reflect.DeepEqual(d, b) {
			t.Errorf("%s: stats diverge\npredecoded %+v\nbaseline   %+v", p.Name, d, b)
		}
		dp, err := sim.Predecode(p.Asm.Instructions)
		if err != nil {
			t.Fatal(err)
		}
		fused += dp.Fusion().Total()
	}
	// The equivalence above is only meaningful if superinstructions
	// actually fire somewhere in the suite.
	if fused == 0 {
		t.Error("no Table III workload fused any pairs; the fused path is untested")
	}
}

// TestPredecodeCampaignReportsByteIdentical pins that fault campaigns —
// golden run through the tight fused loop, faulted runs through the
// observed slow loop — serialize byte-for-byte the same report with
// pre-decode on and off.
func TestPredecodeCampaignReportsByteIdentical(t *testing.T) {
	dec := campaignBytes(t, NewSuite(7), 2)
	base := campaignBytes(t, predecodeOff(7), 2)
	if !bytes.Equal(dec, base) {
		t.Fatalf("campaign reports diverge:\npredecoded:\n%s\nbaseline:\n%s", dec, base)
	}
}

// TestPredecodeCacheSingleflight pins the decode cache: one miss (and
// one pre-decoded program) per benchmark no matter how many machines run
// it, hits for every reuse, and fused-pair counters published per kind.
func TestPredecodeCacheSingleflight(t *testing.T) {
	reg := metrics.New()
	s := NewSuite(7)
	s.Metrics = reg
	if _, err := s.Stats("SOM"); err != nil {
		t.Fatal(err)
	}
	// RunOnce bypasses the stats cache but not the decode cache: the
	// snapshot already carries the decoded program, so this is a hit-free
	// reuse; a third run through a fresh pooled machine is a hit.
	prog, err := s.Program("SOM")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.decodedProgram(context.Background(), prog); err != nil { // explicit reuse: a hit
		t.Fatal(err)
	}
	c := func(name string) uint64 { return reg.Counter(name, "").Value() }
	if got := c(MetricPredecoded); got != 1 {
		t.Fatalf("programs predecoded = %d, want 1", got)
	}
	if got := c(MetricDecodeMisses); got != 1 {
		t.Fatalf("decode misses = %d, want 1", got)
	}
	if got := c(MetricDecodeHits); got != 1 {
		t.Fatalf("decode hits = %d, want 1", got)
	}
	dp, err := sim.Predecode(prog.Asm.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	var published uint64
	for _, kind := range []string{"load->matvec", "matvec->act", "vec-chain"} {
		published += reg.Counter(MetricFusedPairs, "", metrics.L("kind", kind)).Value()
	}
	if int(published) != dp.Fusion().Total() {
		t.Fatalf("fused pairs published = %d, want %d", published, dp.Fusion().Total())
	}
}

// TestPredecodedWarmRunAllocationFree pins the acceptance criterion that
// the decoded hot loop allocates nothing: a warm iteration — snapshot
// restore plus a full run through the tight fused dispatcher — performs
// zero heap allocations.
func TestPredecodedWarmRunAllocationFree(t *testing.T) {
	s := NewSuite(7)
	prog, err := s.Program(dispatchBenchmark)
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	snap, err := s.preparedSnapshot(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := m.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm decoded run allocates %v times per iteration, want 0", allocs)
	}
}
