package bench

import (
	"testing"
	"time"
)

func TestSuiteProfileMatchesStats(t *testing.T) {
	s := newTestSuite()
	st, err := s.Stats("MLP")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Profile("MLP")
	if err != nil {
		t.Fatal(err)
	}
	// The tracer contract: the profiled re-run is bit-identical to the
	// cached untraced run.
	if rep.Cycles != st.Cycles || rep.Instructions != st.Instructions {
		t.Errorf("profile run: cycles=%d insts=%d, cached stats: %d/%d",
			rep.Cycles, rep.Instructions, st.Cycles, st.Instructions)
	}
	if rep.Label != "MLP" {
		t.Errorf("label = %q", rep.Label)
	}
	var sum int64
	for _, row := range rep.Stalls {
		sum += row.Cycles
	}
	if sum != rep.Cycles {
		t.Errorf("stall rows sum to %d, want %d", sum, rep.Cycles)
	}
	if len(rep.Opcodes) == 0 || len(rep.FUs) == 0 {
		t.Errorf("profile missing opcode or FU rows: %+v", rep)
	}
}

func TestSuiteProfileUnknownBenchmark(t *testing.T) {
	if _, err := newTestSuite().Profile("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestReportCarriesStallBreakdown(t *testing.T) {
	s := newTestSuite()
	st, err := s.Stats("MLP")
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(s, []Result{{Name: "MLP", Stats: st, HostNS: 1000}}, 1, time.Millisecond)
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	e := rep.Benchmarks[0]
	if e.Stalls.Sum() != e.Cycles {
		t.Errorf("report stall breakdown sums to %d, want %d", e.Stalls.Sum(), e.Cycles)
	}
	if e.VectorUtil < 0 || e.VectorUtil > 1 || e.MatrixUtil < 0 || e.MatrixUtil > 1 {
		t.Errorf("utilization out of range: vector=%v matrix=%v", e.VectorUtil, e.MatrixUtil)
	}
	if e.MatrixUtil == 0 {
		t.Error("MLP should keep the matrix unit busy")
	}
	if e.BankConflictCycles != st.BankConflictCycles {
		t.Errorf("bank conflicts = %d, want %d", e.BankConflictCycles, st.BankConflictCycles)
	}
}
