package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"cambricon/internal/trace"
)

// Report is the machine-readable performance record emitted by
// `camrepro -bench-json` (conventionally written to BENCH_sim.json). It
// captures both simulated results (cycle counts, which must stay
// bit-identical across refactors) and host-side throughput (which each
// perf PR should move), so the repo's performance trajectory is diffable
// from commit to commit.
type Report struct {
	// Schema versions the file format.
	Schema string `json:"schema"`
	// Generated is the RFC 3339 emission time.
	Generated string `json:"generated"`
	// GoVersion, GOMAXPROCS and Workers describe the measurement host.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	// Seed is the benchmark generation seed.
	Seed uint64 `json:"seed"`
	// TotalHostNS is the wall-clock time of the whole RunAll fan-out; with
	// workers > 1 it is less than the sum of per-benchmark times.
	TotalHostNS int64 `json:"total_host_ns"`
	// Benchmarks holds one entry per Table III benchmark, in table order.
	Benchmarks []ReportEntry `json:"benchmarks"`
}

// ReportEntry is one benchmark's record in a Report.
type ReportEntry struct {
	Name string `json:"name"`
	// Simulated results: these are properties of the model, not the host.
	Cycles       int64   `json:"cycles"`
	Instructions int64   `json:"instructions"`
	MACOps       int64   `json:"mac_ops"`
	SimSeconds   float64 `json:"sim_seconds"`
	// Stalls is the attributed CPI stack (disjoint causes summing to
	// Cycles); VectorUtil/MatrixUtil are functional-unit busy fractions
	// and BankConflictCycles the crossbar serialization overhead. These
	// make regressions in *why* cycles are spent diffable, not just the
	// totals.
	Stalls             trace.Breakdown `json:"stall_breakdown"`
	VectorUtil         float64         `json:"vector_util"`
	MatrixUtil         float64         `json:"matrix_util"`
	BankConflictCycles int64           `json:"bank_conflict_cycles"`
	// DaDianNao baseline, when expressible.
	DDNCycles int64 `json:"dadiannao_cycles,omitempty"`
	// Host-side throughput of this run.
	HostNS         int64   `json:"host_ns"`
	SimCyclesPerNS float64 `json:"sim_cycles_per_host_ns"`
}

// ReportSchema identifies the current Report format.
const ReportSchema = "cambricon-bench-sim/v1"

// BuildReport assembles a Report from a RunAll result set.
func BuildReport(s *Suite, results []Result, workers int, total time.Duration) *Report {
	rep := &Report{
		Schema:      ReportSchema,
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Seed:        s.Seed,
		TotalHostNS: total.Nanoseconds(),
	}
	for _, r := range results {
		e := ReportEntry{
			Name:         r.Name,
			Cycles:       r.Stats.Cycles,
			Instructions: r.Stats.Instructions,
			MACOps:       r.Stats.MACOps,
			SimSeconds:   r.Stats.Seconds(s.Config.ClockHz),
			HostNS:       r.HostNS,
		}
		e.Stalls = r.Stats.StallBreakdown()
		e.VectorUtil, e.MatrixUtil = r.Stats.Utilization()
		e.BankConflictCycles = r.Stats.BankConflictCycles
		if r.DDNOK {
			e.DDNCycles = r.DDNCycles
		}
		if r.HostNS > 0 {
			e.SimCyclesPerNS = float64(r.Stats.Cycles) / float64(r.HostNS)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return rep
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
