package bench

import (
	"fmt"

	"cambricon/internal/baseline/dadiannao"
	"cambricon/internal/codegen"
	"cambricon/internal/sim"
	"cambricon/internal/workload"
)

// Suite shares generated programs and simulation runs across experiments:
// Figs. 10-13 all measure the same ten benchmark executions.
type Suite struct {
	// Seed drives weight/input generation and the RV stream.
	Seed uint64
	// Config is the accelerator configuration (Table II defaults).
	Config sim.Config

	progs []*codegen.Program
	stats map[string]sim.Stats
}

// NewSuite builds a suite over the Table II machine.
func NewSuite(seed uint64) *Suite {
	return &Suite{Seed: seed, Config: sim.DefaultConfig(), stats: map[string]sim.Stats{}}
}

// Programs generates (once) the ten Table III benchmark programs.
func (s *Suite) Programs() ([]*codegen.Program, error) {
	if s.progs == nil {
		progs, err := codegen.All(s.Seed)
		if err != nil {
			return nil, err
		}
		s.progs = progs
	}
	return s.progs, nil
}

// Program returns one named benchmark program.
func (s *Suite) Program(name string) (*codegen.Program, error) {
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	for _, p := range progs {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: no benchmark %q", name)
}

// Stats runs (once) the named benchmark on the Cambricon-ACC simulator,
// verifying its outputs against the reference model.
func (s *Suite) Stats(name string) (sim.Stats, error) {
	if st, ok := s.stats[name]; ok {
		return st, nil
	}
	p, err := s.Program(name)
	if err != nil {
		return sim.Stats{}, err
	}
	cfg := s.Config
	cfg.Seed = s.Seed ^ 0xcafe
	m, err := sim.New(cfg)
	if err != nil {
		return sim.Stats{}, err
	}
	st, err := p.Execute(m)
	if err != nil {
		return sim.Stats{}, err
	}
	s.stats[name] = st
	return st, nil
}

// Seconds returns the simulated wall-clock time of one benchmark.
func (s *Suite) Seconds(name string) (float64, error) {
	st, err := s.Stats(name)
	if err != nil {
		return 0, err
	}
	return st.Seconds(s.Config.ClockHz), nil
}

// DaDianNao compiles and times one benchmark on the baseline, when
// expressible.
func (s *Suite) DaDianNao(name string) (int64, dadiannao.Activity, bool, error) {
	b, ok := workload.ByName(name)
	if !ok {
		return 0, dadiannao.Activity{}, false, fmt.Errorf("bench: no workload %q", name)
	}
	prog, err := dadiannao.Compile(&b)
	if err != nil {
		return 0, dadiannao.Activity{}, false, nil // inexpressible, not an error
	}
	cycles, act := dadiannao.DefaultConfig().Cycles(prog)
	return cycles, act, true, nil
}
