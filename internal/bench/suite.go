package bench

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"cambricon/internal/baseline/dadiannao"
	"cambricon/internal/chaos"
	"cambricon/internal/codegen"
	"cambricon/internal/metrics"
	"cambricon/internal/reqtrace"
	"cambricon/internal/sim"
	"cambricon/internal/trace"
	"cambricon/internal/workload"
)

// Suite shares generated programs and simulation runs across experiments:
// Figs. 10-13 all measure the same ten benchmark executions.
//
// A Suite is safe for concurrent use: program generation runs once, and
// each benchmark's simulation is deduplicated per name (singleflight), so
// RunAll can fan the ten benchmarks out across a worker pool while the
// experiments keep reading through the same cache. Seed and Config must
// not be mutated once the first run has started.
type Suite struct {
	// Seed drives weight/input generation and the RV stream.
	Seed uint64
	// Config is the accelerator configuration (Table II defaults).
	Config sim.Config
	// Warm enables the warm-start layer (docs/PERF.md, Level 3): runs
	// draw pooled machines restored from per-benchmark snapshots instead
	// of building a fresh machine and replaying the memory image each
	// time. Simulated statistics are bit-identical either way; set false
	// (or pass -warm=off to the CLIs) to force the historical cold path.
	Warm bool
	// Predecode enables the pre-decoded dispatch layer (docs/PERF.md,
	// Level 4): each benchmark program is pre-decoded and fusion-planned
	// once (singleflight, shared by warm snapshots, pooled machines and
	// fault-campaign workers) and runs execute through the decoded
	// interpreter loop. Simulated statistics are bit-identical either
	// way; set false (or pass -predecode=false to the CLIs) to force the
	// per-step decode path.
	Predecode bool
	// Chaos, when non-nil, injects operational failures into the
	// service path (docs/ROBUSTNESS.md, "Chaos for the service path"):
	// failing/delayed snapshot restores, slow pool acquires, and runs
	// that panic — each recovered into an ordinary error by the run
	// path's existing isolation. nil (the default) injects nothing; the
	// hooks are nil-receiver no-ops, so the hot paths stay
	// allocation-free with bit-identical simulated statistics, the same
	// contract trace.Tracer and metrics.Registry honour. Set before the
	// first run.
	Chaos *chaos.Chaos
	// Metrics, when non-nil, receives service-level instrumentation
	// (docs/OBSERVABILITY.md, "Service metrics"): run and cache counters,
	// per-benchmark cycle/wall-time histograms, pool and snapshot-restore
	// activity, and watchdog/cancellation events from the machines the
	// suite prepares. nil (the default) disables metering entirely; the
	// instrumented paths then stay allocation-free and produce
	// bit-identical simulated statistics. Set before the first run.
	Metrics *metrics.Registry

	progsOnce sync.Once
	progs     []*codegen.Program
	progsErr  error

	metOnce sync.Once
	met     *suiteMetrics

	mu    sync.Mutex
	stats map[string]*statsEntry

	pool     machinePool
	prepMu   sync.Mutex
	prepared map[string]*preparedEntry

	decMu   sync.Mutex
	decoded map[string]*decodedEntry
}

// statsEntry is the singleflight cell for one benchmark's simulation: the
// first caller runs it under the once, every later (or concurrent) caller
// blocks on the same once and reads the shared result.
type statsEntry struct {
	once sync.Once
	st   sim.Stats
	err  error
}

// NewSuite builds a suite over the Table II machine, with warm-starts and
// pre-decoded dispatch on.
func NewSuite(seed uint64) *Suite {
	return &Suite{Seed: seed, Config: sim.DefaultConfig(), Warm: true, Predecode: true, stats: map[string]*statsEntry{}}
}

// sm resolves the suite's metric bundle once (nil when no registry is
// attached; every suiteMetrics method is a nil-receiver no-op).
func (s *Suite) sm() *suiteMetrics {
	s.metOnce.Do(func() {
		if s.Metrics != nil {
			s.met = newSuiteMetrics(s.Metrics)
		}
	})
	return s.met
}

// Programs generates (once) the ten Table III benchmark programs.
func (s *Suite) Programs() ([]*codegen.Program, error) {
	s.progsOnce.Do(func() {
		s.progs, s.progsErr = codegen.All(s.Seed)
	})
	return s.progs, s.progsErr
}

// Program returns one named benchmark program.
func (s *Suite) Program(name string) (*codegen.Program, error) {
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	for _, p := range progs {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: no benchmark %q", name)
}

// Stats runs (once) the named benchmark on the Cambricon-ACC simulator,
// verifying its outputs against the reference model. Concurrent calls for
// the same benchmark share a single simulation.
func (s *Suite) Stats(name string) (sim.Stats, error) {
	return s.StatsCtx(context.Background(), name)
}

// StatsCtx is Stats with cancellation. The singleflight contract holds:
// the first caller's simulation is shared by everyone blocked on the
// same benchmark. A run ended by cancellation is NOT cached — the entry
// is dropped so a later call with a live context retries cleanly.
func (s *Suite) StatsCtx(ctx context.Context, name string) (sim.Stats, error) {
	s.mu.Lock()
	if s.stats == nil {
		s.stats = map[string]*statsEntry{}
	}
	entry, ok := s.stats[name]
	if !ok {
		entry = &statsEntry{}
		s.stats[name] = entry
	}
	s.mu.Unlock()
	if ok {
		// Served from (or blocked on) an existing singleflight entry: the
		// caller did not pay for a simulation of its own.
		s.sm().cacheHit()
	}
	entry.once.Do(func() {
		entry.st, entry.err = s.runBenchmark(ctx, name)
	})
	if errors.Is(entry.err, context.Canceled) || errors.Is(entry.err, context.DeadlineExceeded) {
		s.mu.Lock()
		if s.stats[name] == entry {
			delete(s.stats, name)
		}
		s.mu.Unlock()
	}
	return entry.st, entry.err
}

// runBenchmark simulates one benchmark on a prepared machine (pooled and
// snapshot-restored when Warm, freshly built otherwise). A panic anywhere
// in generation or simulation is recovered into the returned error so one
// poisoned benchmark cannot take down a whole campaign. A request
// recorder on ctx (reqtrace.With) gets the per-phase span tree — machine
// preparation inside preparedMachine, then a "sim.run" span annotated
// with the run's cycle counts and its CPI-stack stall attribution — at
// zero cost when no recorder is attached.
func (s *Suite) runBenchmark(ctx context.Context, name string) (st sim.Stats, err error) {
	sm := s.sm()
	sm.runStarted()
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bench: %s: panic: %v", name, r)
		}
		sm.runDone(name, st, time.Since(start), err)
	}()
	p, err := s.Program(name)
	if err != nil {
		return sim.Stats{}, err
	}
	cfg := s.serveConfig()
	m, pooled, err := s.preparedMachine(ctx, p, cfg)
	if err != nil {
		return sim.Stats{}, err
	}
	defer s.releaseMachine(m, pooled)
	// Chaos may stall here or panic in the run's place; the deferred
	// recover above turns an injected panic into this run's error
	// without touching the daemon or the other in-flight runs.
	s.Chaos.BeforeRun()
	rec := reqtrace.From(ctx)
	sp := rec.Start(reqtrace.Root, "sim.run")
	st, err = p.ExecutePreparedContext(ctx, m)
	annotateRun(rec, sp, &st)
	rec.End(sp)
	return st, err
}

// annotateRun links the sim-side span to the run's simulated outcome:
// total cycles and instructions, plus the attributed CPI stack from
// internal/trace (one attribute per stall cause, in cause order), so a
// span timeline explains simulated time as well as wall time. A nil
// recorder makes this free.
func annotateRun(rec *reqtrace.Recorder, sp reqtrace.SpanRef, st *sim.Stats) {
	if rec == nil {
		return
	}
	rec.AnnotateInt(sp, "cycles", st.Cycles)
	rec.AnnotateInt(sp, "instructions", st.Instructions)
	for _, c := range trace.Causes() {
		rec.AnnotateInt(sp, "stall."+c.String(), st.Stalls[c])
	}
}

// ConfigKey returns a short stable digest of the suite's architectural
// configuration and seed — the identity a durable run ledger stamps on
// every row, so recovered history is attributable to the exact machine
// that produced it across restarts and config changes.
func (s *Suite) ConfigKey() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|seed=%d", s.Config, s.Seed)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RunOnce executes one benchmark simulation unconditionally — no
// singleflight cache — over the warm-start layer: the service path
// (cmd/camserve), where every request is a real run on a pooled machine
// and the aggregate behaviour is what the metrics registry observes.
func (s *Suite) RunOnce(ctx context.Context, name string) (sim.Stats, error) {
	return s.runBenchmark(ctx, name)
}

// Profile re-runs one benchmark with a stall-attribution profile
// attached and returns the materialized report (all opcode rows). It
// deliberately bypasses the Stats singleflight cache: the traced run
// gets its own machine, built exactly like runBenchmark's, and the
// tracer contract guarantees its cycle counts match the cached
// untraced run bit for bit.
func (s *Suite) Profile(name string) (*trace.Report, error) {
	p, err := s.Program(name)
	if err != nil {
		return nil, err
	}
	cfg := s.serveConfig()
	m, pooled, err := s.preparedMachine(context.Background(), p, cfg)
	if err != nil {
		return nil, err
	}
	defer s.releaseMachine(m, pooled)
	prof := trace.NewProfile()
	prof.Label = name
	m.SetTracer(prof)
	if _, err := p.ExecutePreparedContext(context.Background(), m); err != nil {
		return nil, err
	}
	return prof.Report(0), nil
}

// Seconds returns the simulated wall-clock time of one benchmark.
func (s *Suite) Seconds(name string) (float64, error) {
	st, err := s.Stats(name)
	if err != nil {
		return 0, err
	}
	return st.Seconds(s.Config.ClockHz), nil
}

// DaDianNao compiles and times one benchmark on the baseline, when
// expressible.
func (s *Suite) DaDianNao(name string) (int64, dadiannao.Activity, bool, error) {
	b, ok := workload.ByName(name)
	if !ok {
		return 0, dadiannao.Activity{}, false, fmt.Errorf("bench: no workload %q", name)
	}
	prog, err := dadiannao.Compile(&b)
	if err != nil {
		return 0, dadiannao.Activity{}, false, nil // inexpressible, not an error
	}
	cycles, act := dadiannao.DefaultConfig().Cycles(prog)
	return cycles, act, true, nil
}
