package bench

// Tests pinning the warm-start layer's core contract: warm (pooled,
// snapshot-restored) and cold (machine-per-run) paths produce
// byte-identical simulated results, campaigns stay deterministic across
// worker counts, and the pool actually recycles machines without leaking
// goroutines.

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cambricon/internal/fault"
)

// warmBenchmarks keeps these tests fast: the two cheapest Table III
// programs still cover scalar, vector and matrix paths.
var warmBenchmarks = []string{"MLP", "HNN"}

func coldSuite(seed uint64) *Suite {
	s := NewSuite(seed)
	s.Warm = false
	return s
}

// campaignBytes runs a fault campaign over the suite's MLP target and
// returns the serialized report.
func campaignBytes(t *testing.T, s *Suite, workers int) []byte {
	t.Helper()
	targets, err := s.FaultTargets()
	if err != nil {
		t.Fatal(err)
	}
	var target fault.Target
	for _, tgt := range targets {
		if tgt.Name() == "MLP" {
			target = tgt
		}
	}
	c := fault.Campaign{Seed: s.Seed, Sites: 24, Workers: workers}
	rep, err := c.Run(context.Background(), []fault.Target{target})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmStatsMatchCold pins that warm-started benchmark runs report
// the exact statistics the historical cold path reports.
func TestWarmStatsMatchCold(t *testing.T) {
	warm, cold := NewSuite(7), coldSuite(7)
	for _, name := range warmBenchmarks {
		w, err := warm.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cold.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w, c) {
			t.Fatalf("%s: warm stats %+v != cold stats %+v", name, w, c)
		}
	}
	// The warm suite re-runs through the cache-bypassing Profile path;
	// its cycle count must match too.
	rep, err := warm.Profile("MLP")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := warm.Stats("MLP")
	if rep.Cycles != st.Cycles {
		t.Fatalf("warm profile cycles %d != stats cycles %d", rep.Cycles, st.Cycles)
	}
}

// TestCampaignWarmColdByteIdentical pins the headline determinism claim:
// the cambricon-fault/v1 report is byte-identical with warm-starts on
// and off.
func TestCampaignWarmColdByteIdentical(t *testing.T) {
	warm := campaignBytes(t, NewSuite(7), 2)
	cold := campaignBytes(t, coldSuite(7), 2)
	if !bytes.Equal(warm, cold) {
		t.Fatal("warm and cold campaign reports differ")
	}
}

// TestCampaignWorkersByteIdentical pins that machine pooling keeps the
// campaign deterministic across worker counts (run under -race in CI),
// and that the pooled workers neither leak goroutines nor keep building
// machines once the pool is primed.
func TestCampaignWorkersByteIdentical(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewSuite(7)
	serial := campaignBytes(t, s, 1)
	parallel := campaignBytes(t, s, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("workers=1 and workers=8 campaign reports differ")
	}
	builds, reuses := s.PoolStats()
	if reuses == 0 {
		t.Fatalf("pool never recycled a machine (builds=%d)", builds)
	}
	// Two campaigns = 2 golden + 48 faulted runs. The bounded free list
	// never sheds a machine on its own (unlike the sync.Pool it
	// replaced), so builds are exactly the high-water concurrency of
	// each campaign: at most 1 (serial) + 8 (parallel) machines.
	if builds+reuses < 50 {
		t.Fatalf("pool saw %d acquisitions for 50 runs (builds=%d reuses=%d)", builds+reuses, builds, reuses)
	}
	if builds > 9 {
		t.Fatalf("pool built %d machines for 50 runs across 1+8 workers (reuses=%d)", builds, reuses)
	}
	// Campaign workers exit after their sweep; give stragglers a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestFaultTargetBufferReuse pins the satellite allocation fix: RunBuf
// fills the caller's buffer instead of allocating when it has capacity.
func TestFaultTargetBufferReuse(t *testing.T) {
	targets, err := NewSuite(7).FaultTargets()
	if err != nil {
		t.Fatal(err)
	}
	var bt fault.BufferedTarget
	for _, tgt := range targets {
		if tgt.Name() == "MLP" {
			bt = tgt.(fault.BufferedTarget)
		}
	}
	first := bt.RunBuf(nil, 0, nil)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	buf := first.Output
	second := bt.RunBuf(nil, 0, buf)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if &buf[0] != &second.Output[0] {
		t.Fatal("RunBuf allocated a new output instead of reusing the buffer")
	}
	if !bytes.Equal(first.Output, second.Output) {
		t.Fatal("buffered rerun produced different output")
	}
}

// TestKernelMachineWarmMatchesCold pins the experiment paths (ablations,
// sweeps) that run handcrafted kernels on pristine pooled machines.
func TestKernelMachineWarmMatchesCold(t *testing.T) {
	warmTbl, err := RunMMVSweep(NewSuite(7))
	if err != nil {
		t.Fatal(err)
	}
	coldTbl, err := RunMMVSweep(coldSuite(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmTbl.Rows, coldTbl.Rows) {
		t.Fatalf("warm sweep %v != cold sweep %v", warmTbl.Rows, coldTbl.Rows)
	}
}
