package bench

// This file is the service-metrics adapter (docs/OBSERVABILITY.md,
// "Service metrics"): when a Suite has a metrics.Registry attached, the
// run, warm-start and snapshot layers report aggregate counters and
// histograms into it. With no registry attached every hook below is a
// nil-receiver no-op, so the hot paths stay allocation-free and the
// simulated statistics are bit-identical either way — the same contract
// trace.Tracer and fault.Injector honour.

import (
	"time"

	"cambricon/internal/metrics"
	"cambricon/internal/sim"
)

// Metric names exported by an instrumented Suite (the catalogue in
// docs/OBSERVABILITY.md).
const (
	MetricRunsStarted   = "cambricon_bench_runs_started_total"
	MetricRunsCompleted = "cambricon_bench_runs_completed_total"
	MetricRunsFailed    = "cambricon_bench_runs_failed_total"
	MetricCacheHits     = "cambricon_bench_cache_hits_total"
	MetricRunCycles     = "cambricon_bench_run_cycles"
	MetricRunWall       = "cambricon_bench_run_wall_seconds"
	MetricPoolHits      = "cambricon_pool_hits_total"
	MetricPoolMisses    = "cambricon_pool_misses_total"
	MetricPoolMemShared = "cambricon_pool_mem_shared_total"
	MetricRestores      = "cambricon_snapshot_restores_total"
	MetricRestoreBytes  = "cambricon_snapshot_restore_bytes_total"
	MetricSnapPrepared  = "cambricon_snapshot_prepared"
	MetricSnapResident  = "cambricon_snapshot_resident_bytes"
	MetricSnapDense     = "cambricon_snapshot_dense_bytes"
	MetricWatchdogTrips = "cambricon_sim_watchdog_trips_total"
	MetricCancellations = "cambricon_sim_cancellations_total"
	MetricFFConverged   = "cambricon_fault_ff_converged_total"
	MetricPredecoded    = "cambricon_bench_programs_predecoded_total"
	MetricDecodeHits    = "cambricon_bench_decode_cache_hits_total"
	MetricDecodeMisses  = "cambricon_bench_decode_cache_misses_total"
	MetricFusedPairs    = "cambricon_bench_fused_pairs_total"
)

// suiteMetrics is the resolved bundle of suite instruments. A nil
// *suiteMetrics (no registry attached) makes every method a no-op.
type suiteMetrics struct {
	reg *metrics.Registry

	runsStarted   *metrics.Counter
	runsCompleted *metrics.Counter
	runsFailed    *metrics.Counter
	cacheHits     *metrics.Counter

	poolHits      *metrics.Counter
	poolMisses    *metrics.Counter
	poolMemShared *metrics.Counter
	restores      *metrics.Counter
	restoreBytes  *metrics.Counter
	ffConvergedC  *metrics.Counter

	predecodedN  *metrics.Counter
	decodeHits   *metrics.Counter
	decodeMisses *metrics.Counter

	snapPrepared *metrics.Gauge
	snapResident *metrics.Gauge
	snapDense    *metrics.Gauge

	// simM is handed to every machine the suite prepares, so watchdog
	// trips and cancellations are counted fleet-wide.
	simM sim.Metrics
}

// cycleBuckets spans MLP's few thousand cycles up through multi-billion
// pathological runs; wallBuckets spans a warm microsecond-scale run up
// through minutes.
var (
	cycleBuckets = metrics.ExpBuckets(1024, 4, 14)
	wallBuckets  = metrics.ExpBuckets(10e-6, 4, 14)
)

func newSuiteMetrics(reg *metrics.Registry) *suiteMetrics {
	sm := &suiteMetrics{
		reg:           reg,
		runsStarted:   reg.Counter(MetricRunsStarted, "benchmark simulations started"),
		runsCompleted: reg.Counter(MetricRunsCompleted, "benchmark simulations completed successfully"),
		runsFailed:    reg.Counter(MetricRunsFailed, "benchmark simulations that returned an error"),
		cacheHits:     reg.Counter(MetricCacheHits, "Stats calls served from the suite's singleflight cache"),
		poolHits:      reg.Counter(MetricPoolHits, "machine acquisitions served by recycling a pooled machine"),
		poolMisses:    reg.Counter(MetricPoolMisses, "machine acquisitions that built a fresh machine"),
		poolMemShared: reg.Counter(MetricPoolMemShared, "pool acquisitions that reconfigured a machine from another configuration with the same memory geometry, reusing its main-memory allocation"),
		restores:      reg.Counter(MetricRestores, "snapshot restores performed by the warm-start layer"),
		restoreBytes:  reg.Counter(MetricRestoreBytes, "bytes copied by snapshot restores (dirty pages only on the warm path)"),
		ffConvergedC:  reg.Counter(MetricFFConverged, "fast-forwarded fault runs completed early by a convergence proof (golden observation returned without simulating the remainder)"),
		predecodedN:   reg.Counter(MetricPredecoded, "benchmark programs pre-decoded and fusion-planned"),
		decodeHits:    reg.Counter(MetricDecodeHits, "decoded-program requests served from the suite's singleflight cache"),
		decodeMisses:  reg.Counter(MetricDecodeMisses, "decoded-program requests that paid for a fresh pre-decode"),
		snapPrepared:  reg.Gauge(MetricSnapPrepared, "prepared per-benchmark snapshots held"),
		snapResident:  reg.Gauge(MetricSnapResident, "resident bytes of the prepared snapshots (page-sparse main memory)"),
		snapDense:     reg.Gauge(MetricSnapDense, "bytes the prepared snapshots would occupy with dense main-memory images"),
	}
	sm.simM = sim.Metrics{
		WatchdogTrips: reg.Counter(MetricWatchdogTrips, "runs ended by the MaxCycles watchdog"),
		Cancellations: reg.Counter(MetricCancellations, "runs ended by context cancellation"),
	}
	return sm
}

func (sm *suiteMetrics) runStarted() {
	if sm != nil {
		sm.runsStarted.Inc()
	}
}

// runDone records one finished run: outcome counter plus the
// per-benchmark cycle and wall-time histograms.
func (sm *suiteMetrics) runDone(name string, st sim.Stats, wall time.Duration, err error) {
	if sm == nil {
		return
	}
	if err != nil {
		sm.runsFailed.Inc()
		return
	}
	sm.runsCompleted.Inc()
	sm.reg.Histogram(MetricRunCycles, "simulated cycles per run", cycleBuckets,
		metrics.L("benchmark", name)).Observe(float64(st.Cycles))
	sm.reg.Histogram(MetricRunWall, "host wall-clock seconds per run", wallBuckets,
		metrics.L("benchmark", name)).Observe(wall.Seconds())
}

func (sm *suiteMetrics) cacheHit() {
	if sm != nil {
		sm.cacheHits.Inc()
	}
}

// poolAcquired records one pool acquisition. shared marks a
// cross-configuration steal (the machine came from a different
// architectural entry with the same memory geometry and was
// Reconfigured); a shared acquisition is also a hit.
func (sm *suiteMetrics) poolAcquired(reused, shared bool) {
	if sm == nil {
		return
	}
	if reused {
		sm.poolHits.Inc()
	} else {
		sm.poolMisses.Inc()
	}
	if shared {
		sm.poolMemShared.Inc()
	}
}

func (sm *suiteMetrics) ffConverged() {
	if sm != nil {
		sm.ffConvergedC.Inc()
	}
}

func (sm *suiteMetrics) decodeCacheHit() {
	if sm != nil {
		sm.decodeHits.Inc()
	}
}

// predecoded accounts one freshly pre-decoded program: the decode-cache
// miss that paid for it, plus its static fusion plan broken out by pair
// kind (docs/OBSERVABILITY.md, "Pre-decode and fusion").
func (sm *suiteMetrics) predecoded(dp *sim.DecodedProgram) {
	if sm == nil || dp == nil {
		return
	}
	sm.predecodedN.Inc()
	sm.decodeMisses.Inc()
	f := dp.Fusion()
	for _, p := range []struct {
		kind sim.FuseKind
		n    int
	}{
		{sim.FuseLoadMatVec, f.LoadMatVec},
		{sim.FuseMatVecAct, f.MatVecAct},
		{sim.FuseVecChain, f.VecChain},
	} {
		if p.n > 0 {
			sm.reg.Counter(MetricFusedPairs, "statically fused instruction pairs, by kind",
				metrics.L("kind", p.kind.String())).Add(int64(p.n))
		}
	}
}

func (sm *suiteMetrics) restored(bytes int) {
	if sm == nil {
		return
	}
	sm.restores.Inc()
	sm.restoreBytes.Add(int64(bytes))
}

// snapshotPrepared accounts one newly captured per-benchmark snapshot:
// the resident (sparse) footprint and the dense footprint it replaced —
// their gap is the sparse-image saving as a live gauge.
func (sm *suiteMetrics) snapshotPrepared(snap *sim.Snapshot) {
	if sm == nil || snap == nil {
		return
	}
	sm.snapPrepared.Add(1)
	sm.snapResident.Add(int64(snap.Bytes()))
	sm.snapDense.Add(int64(snap.DenseBytes()))
}

// snapshotDropped reverses snapshotPrepared's accounting when
// DropPreparedSnapshots releases a snapshot back to the collector.
func (sm *suiteMetrics) snapshotDropped(snap *sim.Snapshot) {
	if sm == nil || snap == nil {
		return
	}
	sm.snapPrepared.Add(-1)
	sm.snapResident.Add(-int64(snap.Bytes()))
	sm.snapDense.Add(-int64(snap.DenseBytes()))
}

// simMetrics returns the machine-level counter bundle (nil when
// unmetered, which Machine.SetMetrics treats as detach).
func (sm *suiteMetrics) simMetrics() *sim.Metrics {
	if sm == nil {
		return nil
	}
	return &sm.simM
}
