package bench

// Tests pinning the checkpoint fast-forwarding contract (docs/PERF.md,
// Level 5): a campaign with Checkpoints set produces a report
// byte-identical to the ordinary full-replay campaign — across all five
// fault models, so the stuck-lane fallback and the windowed dma-bit hop
// path are exercised too — and degrades cleanly when checkpoints cannot
// be prepared.

import (
	"bytes"
	"context"
	"testing"

	"cambricon/internal/fault"
	"cambricon/internal/metrics"
)

// ffCampaignBytes runs campaign c over the suite's named target and
// returns the serialized report.
func ffCampaignBytes(t *testing.T, s *Suite, c fault.Campaign, name string) []byte {
	t.Helper()
	targets, err := s.FaultTargets()
	if err != nil {
		t.Fatal(err)
	}
	var target fault.Target
	for _, tgt := range targets {
		if tgt.Name() == name {
			target = tgt
		}
	}
	if target == nil {
		t.Fatalf("target %q not found", name)
	}
	rep, err := c.Run(context.Background(), []fault.Target{target})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignFastForwardByteIdentical is the differential gate: the
// fast-forwarded campaign's report bytes equal the full-replay
// campaign's, for every worker count, over the full fault-model
// taxonomy.
func TestCampaignFastForwardByteIdentical(t *testing.T) {
	slow := ffCampaignBytes(t, NewSuite(7),
		fault.Campaign{Seed: 7, Sites: 30, Workers: 1}, "MLP")
	for _, workers := range []int{1, 4} {
		reg := metrics.New()
		fast := ffCampaignBytes(t, NewSuite(7),
			fault.Campaign{Seed: 7, Sites: 30, Workers: workers, Checkpoints: 4, Metrics: reg}, "MLP")
		if !bytes.Equal(slow, fast) {
			t.Fatalf("workers=%d: fast-forwarded report differs from full replay:\n--- replay ---\n%s\n--- fastforward ---\n%s",
				workers, slow, fast)
		}
		// All 30 sites dispatch through the fast-forward path (stuck-lane
		// sites fall back to full replay inside the target, but they are
		// still dispatched through it).
		if got := reg.Counter(fault.MetricFaultFastForward, "").Value(); got != 30 {
			t.Fatalf("workers=%d: fast-forward dispatches = %d, want 30", workers, got)
		}
	}
}

// TestCampaignFastForwardModelSubset pins the combination the host
// benchmark measures: a transient-models-only campaign, fast-forwarded,
// still matches its own full replay byte for byte.
func TestCampaignFastForwardModelSubset(t *testing.T) {
	models := []fault.Model{fault.ModelSpadBit, fault.ModelGPRBit, fault.ModelFetchBit, fault.ModelDMABit}
	slow := ffCampaignBytes(t, NewSuite(9),
		fault.Campaign{Seed: 9, Sites: 20, Workers: 2, Models: models}, "MLP")
	fast := ffCampaignBytes(t, NewSuite(9),
		fault.Campaign{Seed: 9, Sites: 20, Workers: 2, Models: models, Checkpoints: 6}, "MLP")
	if !bytes.Equal(slow, fast) {
		t.Fatalf("transient-subset fast-forwarded report differs from full replay:\n--- replay ---\n%s\n--- fastforward ---\n%s", slow, fast)
	}
}

// TestCampaignFastForwardByteIdenticalSOM pins the byte-identity gate on
// the benchmark the host measurement uses (SOM) with the host row's
// transient-model campaign shape, across seeds — the workload where the
// convergence early exit actually triggers. The report must match full
// replay byte for byte, and at least one site must have completed
// through a convergence proof (otherwise the Level 5 speedup machinery
// silently regressed to prefix-skipping).
func TestCampaignFastForwardByteIdenticalSOM(t *testing.T) {
	models := []fault.Model{fault.ModelSpadBit, fault.ModelGPRBit, fault.ModelFetchBit, fault.ModelDMABit}
	for _, seed := range []uint64{7, 11} {
		slow := ffCampaignBytes(t, NewSuite(seed),
			fault.Campaign{Seed: seed, Sites: 32, Workers: 2, Models: models}, "SOM")
		reg := metrics.New()
		s := NewSuite(seed)
		s.Metrics = reg
		fast := ffCampaignBytes(t, s,
			fault.Campaign{Seed: seed, Sites: 32, Workers: 2, Models: models, Checkpoints: 8}, "SOM")
		if !bytes.Equal(slow, fast) {
			t.Fatalf("seed %d: SOM fast-forwarded report differs from full replay:\n--- replay ---\n%s\n--- fastforward ---\n%s",
				seed, slow, fast)
		}
		if got := reg.Counter(MetricFFConverged, "").Value(); got == 0 {
			t.Fatalf("seed %d: no site completed through a convergence proof", seed)
		}
	}
}

// TestCampaignFastForwardColdFallback pins the degradation path: a cold
// suite cannot prepare checkpoints, so a Checkpoints campaign silently
// runs the ordinary path — same report, zero fast-forwarded runs.
func TestCampaignFastForwardColdFallback(t *testing.T) {
	reg := metrics.New()
	cold := ffCampaignBytes(t, coldSuite(7),
		fault.Campaign{Seed: 7, Sites: 15, Workers: 2, Checkpoints: 4, Metrics: reg}, "MLP")
	warm := ffCampaignBytes(t, NewSuite(7),
		fault.Campaign{Seed: 7, Sites: 15, Workers: 2}, "MLP")
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold-fallback report differs from warm full replay")
	}
	if got := reg.Counter(fault.MetricFaultFastForward, "").Value(); got != 0 {
		t.Fatalf("cold suite fast-forwarded %d runs, want 0", got)
	}
}
