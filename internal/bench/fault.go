package bench

// This file is the fault-campaign adapter: it exposes the Table III
// benchmarks as fault.Target implementations so fault.Campaign can
// sweep injected faults across the same programs the performance
// experiments run.

import (
	"context"
	"errors"
	"fmt"

	"cambricon/internal/codegen"
	"cambricon/internal/core"
	"cambricon/internal/fault"
	"cambricon/internal/fixed"
	"cambricon/internal/sim"
)

// FaultTargets exposes the benchmark programs as fault-campaign
// targets. Each run draws its machine through the suite's warm-start
// layer (a pooled machine restored from the benchmark's post-Init
// snapshot; a fresh build when Warm is off) configured exactly like the
// performance runs: same Table II machine, same derived seed. Machines
// are never shared between concurrent campaign workers.
func (s *Suite) FaultTargets() ([]fault.Target, error) {
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	targets := make([]fault.Target, len(progs))
	for i, p := range progs {
		targets[i] = &faultTarget{suite: s, prog: p}
	}
	return targets, nil
}

// faultTarget adapts one generated benchmark to fault.Target (and
// fault.BufferedTarget).
type faultTarget struct {
	suite *Suite
	prog  *codegen.Program
}

func (t *faultTarget) Name() string { return t.prog.Name }

// Run executes the benchmark once under the given injector.
func (t *faultTarget) Run(inj fault.Injector, maxCycles int64) fault.Observation {
	return t.RunBuf(inj, maxCycles, nil)
}

// RunBuf is Run with an optional output buffer: when buf has capacity it
// backs Observation.Output, so a campaign worker that is done comparing
// the previous observation's output can recycle the bytes instead of
// allocating ~2N per faulted run. Per the fault.Target contract it never
// panics (a panic is reported as a crash), marks watchdog terminations
// as hangs, and fills Geometry so the campaign can derive fault sites
// from the golden run.
func (t *faultTarget) RunBuf(inj fault.Injector, maxCycles int64, buf []byte) (obs fault.Observation) {
	defer func() {
		if r := recover(); r != nil {
			obs.Crashed = true
			obs.Err = fmt.Errorf("bench: %s: panic: %v", t.prog.Name, r)
		}
	}()
	cfg := t.suite.Config
	cfg.Seed = t.suite.Seed ^ 0xcafe
	cfg.MaxCycles = maxCycles
	m, pooled, err := t.suite.preparedMachine(context.Background(), t.prog, cfg)
	if err != nil {
		obs.Err = err
		return obs
	}
	defer t.suite.releaseMachine(m, pooled)
	m.SetInjector(inj)
	stats, err := m.Run()
	obs.Cycles = stats.Cycles
	obs.Instructions = stats.Instructions
	obs.Geometry = fault.Geometry{
		Instructions:    stats.Instructions,
		GPRs:            core.NumGPRs,
		VectorSpadWords: cfg.VectorSpadBytes / 2,
		MatrixSpadWords: cfg.MatrixSpadBytes / 2,
		VectorLanes:     cfg.VectorLanes,
		MatrixLanes:     cfg.MatrixBlocks * cfg.MACsPerBlock,
	}
	if err != nil {
		var we *sim.WatchdogError
		if errors.As(err, &we) {
			obs.Hung = true
		}
		obs.Err = err
		return obs
	}
	// The golden (injector-free) run must also match the reference
	// model: a wrong golden output would poison every classification.
	if inj == nil {
		if err := t.prog.Verify(m); err != nil {
			obs.Err = err
			return obs
		}
	}
	obs.Output, obs.Err = t.output(m, buf)
	return obs
}

// output serializes the benchmark's declared result regions from main
// memory into buf (grown as needed): each element as its raw Q8.8 bits,
// little-endian, regions in declaration order — exactly the bytes the
// machine holds, since main memory stores elements little-endian. Byte
// equality of two serializations is exactly element-wise equality of all
// outputs.
func (t *faultTarget) output(m *sim.Machine, buf []byte) ([]byte, error) {
	var total int
	for _, r := range t.prog.Results {
		total += fixed.Bytes(r.N)
	}
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	off := 0
	for _, r := range t.prog.Results {
		n := fixed.Bytes(r.N)
		if err := m.ReadMainBytesInto(r.Addr, buf[off:off+n]); err != nil {
			return nil, fmt.Errorf("bench: %s: result %q: %w", t.prog.Name, r.Name, err)
		}
		off += n
	}
	return buf, nil
}
