package bench

// This file is the fault-campaign adapter: it exposes the Table III
// benchmarks as fault.Target implementations so fault.Campaign can
// sweep injected faults across the same programs the performance
// experiments run.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cambricon/internal/codegen"
	"cambricon/internal/core"
	"cambricon/internal/fault"
	"cambricon/internal/sim"
)

// FaultTargets exposes the benchmark programs as fault-campaign
// targets. Each target builds a fresh machine per run (so concurrent
// campaign workers share nothing) configured exactly like the
// performance runs: same Table II machine, same derived seed.
func (s *Suite) FaultTargets() ([]fault.Target, error) {
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	targets := make([]fault.Target, len(progs))
	for i, p := range progs {
		targets[i] = &faultTarget{suite: s, prog: p}
	}
	return targets, nil
}

// faultTarget adapts one generated benchmark to fault.Target.
type faultTarget struct {
	suite *Suite
	prog  *codegen.Program
}

func (t *faultTarget) Name() string { return t.prog.Name }

// Run executes the benchmark once under the given injector. Per the
// fault.Target contract it never panics (a panic is reported as a
// crash), marks watchdog terminations as hangs, and fills Geometry so
// the campaign can derive fault sites from the golden run.
func (t *faultTarget) Run(inj fault.Injector, maxCycles int64) (obs fault.Observation) {
	defer func() {
		if r := recover(); r != nil {
			obs.Crashed = true
			obs.Err = fmt.Errorf("bench: %s: panic: %v", t.prog.Name, r)
		}
	}()
	cfg := t.suite.Config
	cfg.Seed = t.suite.Seed ^ 0xcafe
	cfg.MaxCycles = maxCycles
	m, err := sim.New(cfg)
	if err != nil {
		obs.Err = err
		return obs
	}
	m.SetInjector(inj)
	if err := t.prog.Init(m); err != nil {
		obs.Err = err
		return obs
	}
	m.LoadProgram(t.prog.Asm.Instructions)
	stats, err := m.Run()
	obs.Cycles = stats.Cycles
	obs.Instructions = stats.Instructions
	obs.Geometry = fault.Geometry{
		Instructions:    stats.Instructions,
		GPRs:            core.NumGPRs,
		VectorSpadWords: cfg.VectorSpadBytes / 2,
		MatrixSpadWords: cfg.MatrixSpadBytes / 2,
		VectorLanes:     cfg.VectorLanes,
		MatrixLanes:     cfg.MatrixBlocks * cfg.MACsPerBlock,
	}
	if err != nil {
		var we *sim.WatchdogError
		if errors.As(err, &we) {
			obs.Hung = true
		}
		obs.Err = err
		return obs
	}
	// The golden (injector-free) run must also match the reference
	// model: a wrong golden output would poison every classification.
	if inj == nil {
		if err := t.prog.Verify(m); err != nil {
			obs.Err = err
			return obs
		}
	}
	obs.Output, obs.Err = t.output(m)
	return obs
}

// output serializes the benchmark's declared result regions from main
// memory: each element as its raw Q8.8 bits, little-endian, regions in
// declaration order. Byte equality of two serializations is exactly
// element-wise equality of all outputs.
func (t *faultTarget) output(m *sim.Machine) ([]byte, error) {
	var total int
	for _, r := range t.prog.Results {
		total += r.N
	}
	out := make([]byte, 0, 2*total)
	for _, r := range t.prog.Results {
		nums, err := m.ReadMainNums(r.Addr, r.N)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: result %q: %w", t.prog.Name, r.Name, err)
		}
		for _, n := range nums {
			out = binary.LittleEndian.AppendUint16(out, uint16(n))
		}
	}
	return out, nil
}
