package bench

// This file is the fault-campaign adapter: it exposes the Table III
// benchmarks as fault.Target implementations so fault.Campaign can
// sweep injected faults across the same programs the performance
// experiments run.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cambricon/internal/codegen"
	"cambricon/internal/core"
	"cambricon/internal/fault"
	"cambricon/internal/fixed"
	"cambricon/internal/sim"
)

// FaultTargets exposes the benchmark programs as fault-campaign
// targets. Each run draws its machine through the suite's warm-start
// layer (a pooled machine restored from the benchmark's post-Init
// snapshot; a fresh build when Warm is off) configured exactly like the
// performance runs: same Table II machine, same derived seed. Machines
// are never shared between concurrent campaign workers.
func (s *Suite) FaultTargets() ([]fault.Target, error) {
	progs, err := s.Programs()
	if err != nil {
		return nil, err
	}
	targets := make([]fault.Target, len(progs))
	for i, p := range progs {
		targets[i] = &faultTarget{suite: s, prog: p}
	}
	return targets, nil
}

// faultTarget adapts one generated benchmark to fault.Target (and
// fault.BufferedTarget, fault.FastForwardTarget).
type faultTarget struct {
	suite *Suite
	prog  *codegen.Program

	// ckpts are the interval checkpoints of the fault-free run prepared
	// by PrepareCheckpoints, ascending by dynamic instruction index;
	// index 0 is the run-start (prepared) snapshot. lv is the golden
	// run's liveness (last-read schedule) and golden its observation,
	// both recorded during the same preparation pass — together they let
	// RunSiteBuf prove mid-run convergence and return the golden result
	// without simulating a faulted run's suffix. All three are immutable
	// and shared by every campaign worker; lv/golden may be nil (the
	// early exit then simply never triggers).
	ckptMu  sync.Mutex
	ckptK   int
	ckpts   []*sim.Snapshot
	lv      *sim.Liveness
	golden  *fault.Observation
	ckptErr error
}

func (t *faultTarget) Name() string { return t.prog.Name }

// runConfig derives the per-run machine configuration: the suite's
// Table II machine with the fault campaign's derived seed and the run's
// watchdog budget.
func (t *faultTarget) runConfig(maxCycles int64) sim.Config {
	cfg := t.suite.Config
	cfg.Seed = t.suite.Seed ^ 0xcafe
	cfg.MaxCycles = maxCycles
	return cfg
}

// Run executes the benchmark once under the given injector.
func (t *faultTarget) Run(inj fault.Injector, maxCycles int64) fault.Observation {
	return t.RunBuf(inj, maxCycles, nil)
}

// RunBuf is Run with an optional output buffer: when buf has capacity it
// backs Observation.Output, so a campaign worker that is done comparing
// the previous observation's output can recycle the bytes instead of
// allocating ~2N per faulted run. Per the fault.Target contract it never
// panics (a panic is reported as a crash), marks watchdog terminations
// as hangs, and fills Geometry so the campaign can derive fault sites
// from the golden run.
func (t *faultTarget) RunBuf(inj fault.Injector, maxCycles int64, buf []byte) (obs fault.Observation) {
	defer func() {
		if r := recover(); r != nil {
			obs.Crashed = true
			obs.Err = fmt.Errorf("bench: %s: panic: %v", t.prog.Name, r)
		}
	}()
	cfg := t.runConfig(maxCycles)
	m, pooled, err := t.suite.preparedMachine(context.Background(), t.prog, cfg)
	if err != nil {
		obs.Err = err
		return obs
	}
	defer t.suite.releaseMachine(m, pooled)
	m.SetInjector(inj)
	stats, err := m.Run()
	return t.finish(m, cfg, stats, err, inj == nil, buf)
}

// finish assembles the observation of a completed (or failed) run: the
// final counters, the site-space geometry, hang/detection classification
// and the serialized result regions. verify additionally checks the run
// against the reference model (golden runs only: a wrong golden output
// would poison every classification).
func (t *faultTarget) finish(m *sim.Machine, cfg sim.Config, stats sim.Stats, err error, verify bool, buf []byte) (obs fault.Observation) {
	obs.Cycles = stats.Cycles
	obs.Instructions = stats.Instructions
	obs.Geometry = fault.Geometry{
		Instructions:    stats.Instructions,
		GPRs:            core.NumGPRs,
		VectorSpadWords: cfg.VectorSpadBytes / 2,
		MatrixSpadWords: cfg.MatrixSpadBytes / 2,
		VectorLanes:     cfg.VectorLanes,
		MatrixLanes:     cfg.MatrixBlocks * cfg.MACsPerBlock,
	}
	if err != nil {
		var we *sim.WatchdogError
		if errors.As(err, &we) {
			obs.Hung = true
		}
		obs.Err = err
		return obs
	}
	if verify {
		if err := t.prog.Verify(m); err != nil {
			obs.Err = err
			return obs
		}
	}
	obs.Output, obs.Err = t.output(m, buf)
	return obs
}

// ffDMAHop is the observed-segment length RunSiteBuf hops in while
// waiting for a windowed dma-bit fault (first transfer at or after At)
// to land: short enough that the observed fraction of the run stays
// negligible, long enough that segment overhead does not.
const ffDMAHop = 256

// PrepareCheckpoints captures k evenly spaced mid-run checkpoints of the
// fault-free run (plus the run-start snapshot), for RunSiteBuf to
// fast-forward from. Requires the suite's warm-start layer — without
// pooled machines and prepared snapshots there is nothing to restore
// onto — and reports any simulation failure, which the campaign treats
// as "fall back to the ordinary path".
func (t *faultTarget) PrepareCheckpoints(k int) error {
	if k <= 0 {
		return fmt.Errorf("bench: %s: checkpoint count %d must be positive", t.prog.Name, k)
	}
	t.ckptMu.Lock()
	defer t.ckptMu.Unlock()
	if t.ckptK == k && (t.ckpts != nil || t.ckptErr != nil) {
		return t.ckptErr
	}
	t.ckptK = k
	t.ckpts, t.lv, t.golden, t.ckptErr = t.buildCheckpoints(k)
	return t.ckptErr
}

func (t *faultTarget) buildCheckpoints(k int) ([]*sim.Snapshot, *sim.Liveness, *fault.Observation, error) {
	if !t.suite.Warm {
		return nil, nil, nil, fmt.Errorf("bench: %s: checkpoint fast-forwarding requires the warm-start layer (Suite.Warm)", t.prog.Name)
	}
	ctx := context.Background()
	cfg := t.runConfig(0)
	m, pooled, err := t.suite.preparedMachine(ctx, t.prog, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	defer t.suite.releaseMachine(m, pooled)
	// Sizing-and-recording pass: the checkpoint spacing needs the
	// fault-free run's dynamic instruction count, and the convergence
	// early exit needs the golden run's access trace and final
	// observation. Recording is behaviour-neutral, so the statistics —
	// and hence the checkpoint boundaries — match the unobserved run.
	rec := sim.NewAccessTrace()
	m.SetAccessTrace(rec)
	st, err := m.Run()
	m.SetAccessTrace(nil)
	if err != nil {
		return nil, nil, nil, err
	}
	gobs := t.finish(m, cfg, st, nil, false, nil)
	golden := &gobs
	if gobs.Err != nil {
		golden = nil
	}
	lv, lverr := rec.Liveness(cfg)
	if lverr != nil {
		// Convergence exits are an optimization: without a usable trace
		// the checkpoints still fast-forward the fault-free prefix.
		lv = nil
	}
	n := st.Instructions
	start, err := t.suite.preparedSnapshot(ctx, t.prog, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := m.Restore(start); err != nil {
		return nil, nil, nil, err
	}
	ckpts := make([]*sim.Snapshot, 0, k+1)
	ckpts = append(ckpts, start)
	last := int64(0)
	for i := 1; i <= k; i++ {
		at := n * int64(i) / int64(k+1)
		if at <= last {
			continue
		}
		_, done, err := m.RunUntil(at)
		if err != nil {
			return nil, nil, nil, err
		}
		if done {
			break
		}
		ckpts = append(ckpts, m.Checkpoint())
		last = at
	}
	return ckpts, lv, golden, nil
}

// RunSiteBuf is RunBuf for one fault site, fast-forwarded: restore the
// nearest prepared checkpoint at or before the site's firing index,
// simulate the fault-free prefix on the unobserved hot path, attach an
// injector only for the firing window, and run the faulted remainder
// unobserved — stopping at the first checkpoint boundary where the run
// provably converges with the golden run (ConvergedWith), whose stored
// observation is then the result. The observation is bit-identical to
// RunBuf with the same site — the simulator guarantees any interleaving
// of restores and run segments matches the uninterrupted run, the
// transient models by construction do nothing before their site index,
// and a proven convergence implies an identical remainder (same
// instructions, timing and outputs).
func (t *faultTarget) RunSiteBuf(f fault.Fault, maxCycles int64, buf []byte) (obs fault.Observation) {
	t.ckptMu.Lock()
	ckpts, lv, golden := t.ckpts, t.lv, t.golden
	t.ckptMu.Unlock()
	if f.Model == fault.ModelStuckLane || len(ckpts) == 0 {
		// Whole-run faults have no fault-free prefix to skip (and without
		// prepared checkpoints there is nothing to fast-forward from).
		return t.RunBuf(fault.New(f), maxCycles, buf)
	}
	defer func() {
		if r := recover(); r != nil {
			obs.Crashed = true
			obs.Err = fmt.Errorf("bench: %s: panic: %v", t.prog.Name, r)
		}
	}()
	// target is the dynamic index of the firing instruction: At for the
	// point models; for dma-bit — which fires at the first offered
	// payload at or after At — the golden run's first transfer there.
	target := f.At
	haveOffer := false
	if f.Model == fault.ModelDMABit && lv != nil {
		offer, ok := lv.DMAOfferAfter(f.At)
		if !ok && golden != nil {
			// The golden run offers no DMA payload at or after the site:
			// the fault can never fire, so the run is the golden run.
			t.suite.sm().ffConverged()
			return goldenObservation(golden, buf)
		}
		if ok {
			target, haveOffer = offer, true
		}
	}
	cfg := t.runConfig(maxCycles)
	// Nearest checkpoint at or before the firing index (ckpts ascend).
	best := ckpts[0]
	for _, s := range ckpts[1:] {
		if s.Instructions() > target {
			break
		}
		best = s
	}
	m, err := t.suite.checkpointMachine(cfg, best)
	if err != nil {
		obs.Err = err
		return obs
	}
	defer t.suite.releaseMachine(m, true)
	stats := best.Stats()
	done := false
	// Phase 1: fault-free prefix, unobserved.
	if target > stats.Instructions {
		stats, done, err = m.RunUntil(target)
	}
	// Phase 2: the firing window, observed. Every resumed segment re-arms
	// the injector (BeginRun), so detaching promptly once the fault has
	// fired is what keeps one-shot semantics identical to RunBuf's single
	// attached run.
	if err == nil && !done {
		inj := fault.New(f)
		m.SetInjector(inj)
		// spad/gpr/fetch fire exactly at At, dma-bit with a known offer at
		// the offer: one observed instruction. Without a liveness trace the
		// dma firing index is unknown — hop forward in short observed
		// segments until the fault lands or the run ends (also the
		// defensive fallback should a predicted offer not fire).
		if f.Model != fault.ModelDMABit || haveOffer {
			stats, done, err = m.RunUntil(target + 1)
		}
		if f.Model == fault.ModelDMABit {
			for err == nil && !done && !inj.Fired() {
				stats, done, err = m.RunUntil(stats.Instructions + ffDMAHop)
			}
		}
		m.SetInjector(nil)
	}
	// Phase 3: faulted remainder, unobserved. At each later checkpoint
	// boundary, try to prove convergence with the golden run; the proof's
	// retry hint skips boundaries where a still-live location is known to
	// keep the check failing, and a hard divergence stops checking.
	if err == nil && !done && lv != nil && golden != nil {
		retryAt := int64(0)
		for _, s := range ckpts {
			j := s.Instructions()
			if j <= stats.Instructions || j < retryAt {
				continue
			}
			stats, done, err = m.RunUntil(j)
			if err != nil || done {
				break
			}
			conv, retry := m.ConvergedWith(s, lv)
			if conv {
				t.suite.sm().ffConverged()
				return goldenObservation(golden, buf)
			}
			if retry == 0 {
				break
			}
			retryAt = retry
		}
	}
	if err == nil && !done {
		stats, err = m.Resume()
	}
	return t.finish(m, cfg, stats, err, false, buf)
}

// goldenObservation copies the stored fault-free observation, backing
// its output with buf (grown as needed) per the RunSiteBuf buffer
// contract: a converged run's cycles, instruction count and outputs are
// provably those of the golden run, and the stored observation is
// shared across workers so its output bytes must not be handed out.
func goldenObservation(g *fault.Observation, buf []byte) fault.Observation {
	obs := *g
	if cap(buf) < len(g.Output) {
		buf = make([]byte, len(g.Output))
	}
	buf = buf[:len(g.Output)]
	copy(buf, g.Output)
	obs.Output = buf
	return obs
}

// output serializes the benchmark's declared result regions from main
// memory into buf (grown as needed): each element as its raw Q8.8 bits,
// little-endian, regions in declaration order — exactly the bytes the
// machine holds, since main memory stores elements little-endian. Byte
// equality of two serializations is exactly element-wise equality of all
// outputs.
func (t *faultTarget) output(m *sim.Machine, buf []byte) ([]byte, error) {
	var total int
	for _, r := range t.prog.Results {
		total += fixed.Bytes(r.N)
	}
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	off := 0
	for _, r := range t.prog.Results {
		n := fixed.Bytes(r.N)
		if err := m.ReadMainBytesInto(r.Addr, buf[off:off+n]); err != nil {
			return nil, fmt.Errorf("bench: %s: result %q: %w", t.prog.Name, r.Name, err)
		}
		off += n
	}
	return buf, nil
}
