package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"cambricon/internal/workload"
)

// TestRunAllDeterministic is the parallel-harness regression guard: the
// suite run with 1 worker and with 8 workers under the same seed must
// produce byte-identical sim.Stats for all ten benchmarks. Machines share
// no state (see sim.Machine), so any divergence here means a shared-state
// leak in the harness. Run under -race this also exercises the
// singleflight synchronization.
func TestRunAllDeterministic(t *testing.T) {
	serial, err := NewSuite(7).RunAll(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSuite(7).RunAll(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) != len(workload.Benchmarks()) {
		t.Fatalf("result counts: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Name != parallel[i].Name {
			t.Fatalf("result %d ordering differs: %q vs %q", i, serial[i].Name, parallel[i].Name)
		}
		// sim.Stats is a plain value type (int64 scalars and arrays), so ==
		// is an exact byte-wise comparison of every counter.
		if serial[i].Stats != parallel[i].Stats {
			t.Errorf("%s: stats differ between workers=1 and workers=8:\nserial:   %+v\nparallel: %+v",
				serial[i].Name, serial[i].Stats, parallel[i].Stats)
		}
		if serial[i].DDNOK != parallel[i].DDNOK || serial[i].DDNCycles != parallel[i].DDNCycles {
			t.Errorf("%s: baseline results differ", serial[i].Name)
		}
	}
}

// TestRunAllMatchesSerialStats pins the parallel path to the plain Stats
// accessor used by the experiments.
func TestRunAllMatchesSerialStats(t *testing.T) {
	s := newTestSuite()
	results, err := s.RunAll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := newTestSuite()
	for _, r := range results {
		st, err := ref.Stats(r.Name)
		if err != nil {
			t.Fatal(err)
		}
		if st != r.Stats {
			t.Errorf("%s: RunAll stats differ from Suite.Stats", r.Name)
		}
	}
}

// TestRunAllCachesIntoSuite checks that experiments after RunAll are pure
// cache reads sharing the same singleflight results.
func TestRunAllCachesIntoSuite(t *testing.T) {
	s := newTestSuite()
	results, err := s.RunAll(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		st, err := s.Stats(r.Name)
		if err != nil {
			t.Fatal(err)
		}
		if st != r.Stats {
			t.Errorf("%s: cached stats differ from RunAll result", r.Name)
		}
	}
}

// TestStatsConcurrentSingleflight hammers one benchmark from many
// goroutines; all callers must observe the same result (and -race must
// stay quiet).
func TestStatsConcurrentSingleflight(t *testing.T) {
	s := newTestSuite()
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st, err := s.Stats("MLP")
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = st.Cycles
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw %d cycles, goroutine 0 saw %d", g, results[g], results[0])
		}
	}
}

func TestRunAllContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := newTestSuite()
	if _, err := s.RunAll(ctx, 2); err == nil {
		t.Fatal("cancelled context did not surface an error")
	}
}

func TestRunAllUnknownWorkloadPropagates(t *testing.T) {
	s := newTestSuite()
	if _, err := s.Stats("nope"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestBuildReportShape(t *testing.T) {
	s := newTestSuite()
	start := time.Now()
	results, err := s.RunAll(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(s, results, 0, time.Since(start))
	if rep.Schema != ReportSchema {
		t.Errorf("schema %q", rep.Schema)
	}
	if len(rep.Benchmarks) != len(workload.Benchmarks()) {
		t.Fatalf("%d report entries", len(rep.Benchmarks))
	}
	ddn := 0
	for i, e := range rep.Benchmarks {
		if e.Name != results[i].Name {
			t.Errorf("entry %d: name %q, want %q", i, e.Name, results[i].Name)
		}
		if e.Cycles <= 0 || e.SimSeconds <= 0 {
			t.Errorf("%s: empty simulated results", e.Name)
		}
		if e.DDNCycles > 0 {
			ddn++
		}
	}
	if ddn != 3 {
		t.Errorf("%d DaDianNao entries, want 3", ddn)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if round.GoVersion != runtime.Version() {
		t.Errorf("round-tripped go version %q", round.GoVersion)
	}
}

// BenchmarkSuiteSerial and BenchmarkSuiteParallel measure full-suite
// regeneration wall clock (fresh suite per iteration, so nothing is
// cached). On a multi-core host the parallel variant should approach
// serial/min(cores, 10).
func benchSuite(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSuite(7).RunAll(context.Background(), workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }
