package workload

import "strings"

// Feature is a computational capability a benchmark requires of an
// architecture. The DaDianNao expressibility analysis (Section V-B1) is a
// set comparison over these features.
type Feature uint16

const (
	// FeatFC: fully-connected (classifier) layers.
	FeatFC Feature = 1 << iota
	// FeatConv: convolutional layers.
	FeatConv
	// FeatPool: pooling layers.
	FeatPool
	// FeatSigmoid: sigmoid/tanh activations.
	FeatSigmoid
	// FeatSample: random sampling against activations (Gibbs, dropout).
	FeatSample
	// FeatRecurrence: a layer feeding its own earlier output back in
	// across timesteps or relaxation iterations.
	FeatRecurrence
	// FeatGating: element-wise products of gate activations (LSTM).
	FeatGating
	// FeatLateral: intra-layer (neuron-to-neuron, fully connected)
	// links, as in Boltzmann machines.
	FeatLateral
	// FeatWeightUpdate: on-device training (outer-product updates) is
	// part of the benchmark, not just inference.
	FeatWeightUpdate
	// FeatSparsityPenalty: KL-divergence sparsity terms during training.
	FeatSparsityPenalty
	// FeatBMUSearch: best-matching-unit distance search and
	// neighborhood-weighted updates (SOM).
	FeatBMUSearch
)

// Benchmark is one of the ten Table III networks.
type Benchmark struct {
	// Name is the paper's benchmark name.
	Name string
	// Structure is the Table III "Network Structure" column.
	Structure string
	// Description is the Table III "Description" column.
	Description string
	// Ops is the layer-level work of one benchmark invocation.
	Ops []Op
	// Features are the capabilities the benchmark requires.
	Features Feature
}

// Has reports whether the benchmark requires feature f.
func (b *Benchmark) Has(f Feature) bool { return b.Features&f != 0 }

// MACs totals multiply-accumulates over all ops and repeats.
func (b *Benchmark) MACs() int64 {
	var s int64
	for _, o := range b.Ops {
		s += o.MACs() * int64(o.Times())
	}
	return s
}

// VectorElems totals element-wise vector work.
func (b *Benchmark) VectorElems() int64 {
	var s int64
	for _, o := range b.Ops {
		s += o.VectorElems() * int64(o.Times())
	}
	return s
}

// TranscendentalElems totals exp/log evaluations.
func (b *Benchmark) TranscendentalElems() int64 {
	var s int64
	for _, o := range b.Ops {
		s += o.TranscendentalElems() * int64(o.Times())
	}
	return s
}

// ParamBytes totals unique parameter bytes (repeats share weights).
func (b *Benchmark) ParamBytes() int64 {
	var s int64
	for _, o := range b.Ops {
		s += o.ParamBytes()
	}
	return s
}

// SeqLen is the synthetic sequence length used for the recurrent benchmarks
// (the paper runs TIMIT utterances; we use a short fixed window so the
// simulated runs stay laptop-scale while exercising the same code paths).
const SeqLen = 8

// GibbsSteps is the number of Gibbs iterations in the BM/RBM benchmarks.
const GibbsSteps = 4

// HopfieldIters is the relaxation iteration count of the HNN benchmark.
const HopfieldIters = 8

// SOMSteps is the number of training inputs for the SOM benchmark.
const SOMSteps = 8

// Benchmarks returns the ten Table III networks in the paper's order.
func Benchmarks() []Benchmark {
	fcSig := func(in, out, repeat int) Op {
		return Op{Kind: OpFC, Act: ActSigmoid, In: in, Out: out, Repeat: repeat}
	}
	return []Benchmark{
		{
			Name:        "MLP",
			Structure:   "input(64) - H1(150) - H2(150) - Output(14)",
			Description: "Multi-Layer Perceptron for anchorperson detection [2]",
			Ops:         []Op{fcSig(64, 150, 1), fcSig(150, 150, 1), fcSig(150, 14, 1)},
			Features:    FeatFC | FeatSigmoid,
		},
		{
			Name:      "CNN",
			Structure: "input(1@32x32) - C1(6@28x28, K:6@5x5) - S1(6@14x14, K:2x2) - C2(16@10x10, K:16@5x5) - S2(16@5x5, K:2x2) - F(120) - F(84) - output(10)",
			Description: "Convolutional neural network (LeNet-5) for hand-written " +
				"character recognition [28]",
			Ops: []Op{
				{Kind: OpConv, Act: ActSigmoid, InC: 1, InH: 32, InW: 32, OutC: 6, K: 5},
				{Kind: OpPool, InC: 6, InH: 28, InW: 28, K: 2},
				{Kind: OpConv, Act: ActSigmoid, InC: 6, InH: 14, InW: 14, OutC: 16, K: 5},
				{Kind: OpPool, InC: 16, InH: 10, InW: 10, K: 2},
				fcSig(400, 120, 1), fcSig(120, 84, 1), fcSig(84, 10, 1),
			},
			Features: FeatFC | FeatConv | FeatPool | FeatSigmoid,
		},
		{
			Name:        "RNN",
			Structure:   "input(26) - H(93) - output(61)",
			Description: "Recurrent neural network on TIMIT database [15]",
			Ops: []Op{
				{Kind: OpFC, Act: ActSigmoid, In: 26 + 93, Out: 93, Repeat: SeqLen},
				fcSig(93, 61, SeqLen),
			},
			Features: FeatFC | FeatSigmoid | FeatRecurrence,
		},
		{
			Name:        "LSTM",
			Structure:   "input(26) - H(93) - output(61)",
			Description: "Long-short-time-memory neural network on TIMIT database [15]",
			Ops: []Op{
				// One FC per gate (input, forget, output sigmoid;
				// candidate tanh), then the element-wise gate
				// combination and the output projection.
				{Kind: OpFC, Act: ActSigmoid, In: 26 + 93, Out: 93, Repeat: SeqLen},
				{Kind: OpFC, Act: ActSigmoid, In: 26 + 93, Out: 93, Repeat: SeqLen},
				{Kind: OpFC, Act: ActSigmoid, In: 26 + 93, Out: 93, Repeat: SeqLen},
				{Kind: OpFC, Act: ActTanh, In: 26 + 93, Out: 93, Repeat: SeqLen},
				{Kind: OpElemwise, Out: 5 * 93, Repeat: SeqLen}, // cell and hidden combine
				fcSig(93, 61, SeqLen),
			},
			Features: FeatFC | FeatSigmoid | FeatRecurrence | FeatGating,
		},
		{
			Name:        "Autoencoder",
			Structure:   "input(320) - H1(200) - H2(100) - H3(50) - Output(10)",
			Description: "A neural network pretrained by auto-encoder on MNIST data set [49]",
			Ops: []Op{
				fcSig(320, 200, 1), fcSig(200, 100, 1), fcSig(100, 50, 1), fcSig(50, 10, 1),
				// One greedy pretraining step of the first layer: decode,
				// backward deltas, tied-weight outer updates.
				{Kind: OpBackFC, Act: ActSigmoid, In: 200, Out: 320},
				{Kind: OpOuterUpdate, In: 320, Out: 200, Repeat: 2},
			},
			Features: FeatFC | FeatSigmoid | FeatWeightUpdate,
		},
		{
			Name:        "Sparse Autoencoder",
			Structure:   "input(320) - H1(200) - H2(100) - H3(50) - Output(10)",
			Description: "A neural network pretrained by sparse auto-encoder on MNIST data set [49]",
			Ops: []Op{
				fcSig(320, 200, 1), fcSig(200, 100, 1), fcSig(100, 50, 1), fcSig(50, 10, 1),
				{Kind: OpBackFC, Act: ActSigmoid, In: 200, Out: 320},
				{Kind: OpElemwise, Out: 200}, // KL sparsity term
				{Kind: OpOuterUpdate, In: 320, Out: 200, Repeat: 2},
			},
			Features: FeatFC | FeatSigmoid | FeatWeightUpdate | FeatSparsityPenalty,
		},
		{
			Name:        "BM",
			Structure:   "V(500) - H(500)",
			Description: "Boltzmann machines on MNIST data set [39]",
			Ops: []Op{
				{Kind: OpFCLateral, Act: ActSigmoid, In: 500, Out: 500, Repeat: GibbsSteps},
				{Kind: OpSample, Out: 500, Repeat: GibbsSteps},
			},
			Features: FeatFC | FeatSigmoid | FeatSample | FeatLateral | FeatRecurrence,
		},
		{
			Name:        "RBM",
			Structure:   "V(500) - H(500)",
			Description: "Restricted Boltzmann machine on MNIST data set [39]",
			// Alternating Gibbs sampling: hidden then visible update per
			// step. Both directions are classifier layers plus sampling,
			// which is why the RBM stays inside DaDianNao's four layer
			// types while the laterally-connected BM does not.
			Ops: []Op{
				fcSig(500, 500, GibbsSteps),
				{Kind: OpSample, Out: 500, Repeat: GibbsSteps},
				// The visible update reuses W transposed (tied weights).
				{Kind: OpFC, Act: ActSigmoid, In: 500, Out: 500,
					Repeat: GibbsSteps, SharedParams: true},
				{Kind: OpSample, Out: 500, Repeat: GibbsSteps},
			},
			Features: FeatFC | FeatSigmoid | FeatSample,
		},
		{
			Name:        "SOM",
			Structure:   "input data(64) - neurons(36)",
			Description: "Self-organizing maps based data mining of seasonal flu [48]",
			Ops: []Op{
				{Kind: OpDistance, In: 64, Out: 36, Repeat: SOMSteps},
				{Kind: OpArgExtreme, In: 36, Repeat: SOMSteps},
				{Kind: OpOuterUpdate, In: 64, Out: 36, Repeat: SOMSteps},
			},
			Features: FeatBMUSearch | FeatWeightUpdate,
		},
		{
			Name:        "HNN",
			Structure:   "vector(5), vector component(100)",
			Description: "Hopfield neural network on hand-written digits data set [36]",
			Ops: []Op{
				{Kind: OpFC, Act: ActSign, In: 100, Out: 100, Repeat: HopfieldIters},
			},
			Features: FeatFC | FeatRecurrence,
		},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists the benchmark names in Table III order.
func Names() []string {
	bs := Benchmarks()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// featureNames maps each capability bit to a short label.
var featureNames = []struct {
	bit  Feature
	name string
}{
	{FeatFC, "fully-connected layers"},
	{FeatConv, "convolution"},
	{FeatPool, "pooling"},
	{FeatSigmoid, "sigmoid activation"},
	{FeatSample, "random sampling"},
	{FeatRecurrence, "recurrence"},
	{FeatGating, "gating (element-wise gate products)"},
	{FeatLateral, "lateral intra-layer connections"},
	{FeatWeightUpdate, "on-device weight updates"},
	{FeatSparsityPenalty, "sparsity penalty"},
	{FeatBMUSearch, "best-matching-unit search"},
}

// String lists the named capabilities in the feature set.
func (f Feature) String() string {
	var parts []string
	for _, fn := range featureNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}
