package workload

import "testing"

func TestTenBenchmarksInPaperOrder(t *testing.T) {
	want := []string{"MLP", "CNN", "RNN", "LSTM", "Autoencoder",
		"Sparse Autoencoder", "BM", "RBM", "SOM", "HNN"}
	got := Names()
	if len(got) != 10 {
		t.Fatalf("%d benchmarks, want 10", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("benchmark %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("BM")
	if !ok || b.Name != "BM" {
		t.Fatal("ByName(BM) failed")
	}
	if _, ok := ByName("VGG"); ok {
		t.Error("unknown benchmark resolved")
	}
}

func TestMACCounts(t *testing.T) {
	mlp, _ := ByName("MLP")
	want := int64(64*150 + 150*150 + 150*14)
	if got := mlp.MACs(); got != want {
		t.Errorf("MLP MACs = %d, want %d", got, want)
	}
	cnn, _ := ByName("CNN")
	c1 := int64(28 * 28 * 6 * 25)
	c2 := int64(10 * 10 * 16 * 25 * 6)
	fcs := int64(400*120 + 120*84 + 84*10)
	if got := cnn.MACs(); got != c1+c2+fcs {
		t.Errorf("CNN MACs = %d, want %d", got, c1+c2+fcs)
	}
	bm, _ := ByName("BM")
	if got := bm.MACs(); got != int64(GibbsSteps)*(500*500+500*500) {
		t.Errorf("BM MACs = %d", got)
	}
	rbm, _ := ByName("RBM")
	if rbm.MACs() != int64(GibbsSteps)*2*500*500 {
		t.Errorf("RBM MACs = %d", rbm.MACs())
	}
	// BM carries two full matrices (W and the lateral L); the RBM reuses
	// one W in both directions.
	if bm.ParamBytes() <= rbm.ParamBytes() {
		t.Error("BM must carry more parameters than RBM (lateral matrix)")
	}
}

func TestFeatureAnalysis(t *testing.T) {
	cases := map[string]struct {
		has, lacks Feature
	}{
		"MLP":  {has: FeatFC | FeatSigmoid, lacks: FeatRecurrence | FeatLateral},
		"CNN":  {has: FeatConv | FeatPool, lacks: FeatSample},
		"RNN":  {has: FeatRecurrence, lacks: FeatGating},
		"LSTM": {has: FeatRecurrence | FeatGating, lacks: FeatLateral},
		"BM":   {has: FeatLateral | FeatSample, lacks: FeatConv},
		"RBM":  {has: FeatSample, lacks: FeatLateral},
		"SOM":  {has: FeatBMUSearch, lacks: FeatSigmoid},
		"HNN":  {has: FeatRecurrence, lacks: FeatSample},
		"Autoencoder": {has: FeatWeightUpdate,
			lacks: FeatSparsityPenalty},
		"Sparse Autoencoder": {has: FeatWeightUpdate | FeatSparsityPenalty},
	}
	for name, c := range cases {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		if b.Features&c.has != c.has {
			t.Errorf("%s: missing features %b", name, c.has&^b.Features)
		}
		if b.Features&c.lacks != 0 {
			t.Errorf("%s: unexpected features %b", name, b.Features&c.lacks)
		}
	}
}

func TestWorkCountsPositive(t *testing.T) {
	for _, b := range Benchmarks() {
		if b.MACs() <= 0 && b.Name != "SOM" {
			t.Errorf("%s: MACs = %d", b.Name, b.MACs())
		}
		if b.VectorElems() <= 0 {
			t.Errorf("%s: VectorElems = %d", b.Name, b.VectorElems())
		}
		if b.ParamBytes() <= 0 {
			t.Errorf("%s: ParamBytes = %d", b.Name, b.ParamBytes())
		}
		if b.Structure == "" || b.Description == "" {
			t.Errorf("%s: missing Table III metadata", b.Name)
		}
	}
}

func TestConvGeometry(t *testing.T) {
	op := Op{Kind: OpConv, InC: 1, InH: 32, InW: 32, OutC: 6, K: 5}
	if op.OutH() != 28 || op.OutW() != 28 {
		t.Errorf("conv out %dx%d", op.OutH(), op.OutW())
	}
	pool := Op{Kind: OpPool, InC: 6, InH: 28, InW: 28, K: 2}
	if pool.OutH() != 14 || pool.OutW() != 14 {
		t.Errorf("pool out %dx%d", pool.OutH(), pool.OutW())
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpFC, OpFCLateral, OpConv, OpPool, OpElemwise, OpSample,
		OpOuterUpdate, OpBackFC, OpDistance, OpArgExtreme}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestTimesDefaultsToOne(t *testing.T) {
	if (Op{}).Times() != 1 {
		t.Error("zero Repeat must mean 1")
	}
	if (Op{Repeat: 5}).Times() != 5 {
		t.Error("Repeat not honored")
	}
}
