// Package workload describes the ten Table III benchmark networks in an
// architecture-neutral layer IR. The Cambricon code generators
// (internal/codegen), the DaDianNao expressibility checker
// (internal/baseline/dadiannao) and the general-purpose-architecture models
// (internal/baseline/genarch) all consume this single description, so every
// comparison in the evaluation runs over exactly the same work.
package workload

import "fmt"

// OpKind classifies one layer-level operation.
type OpKind uint8

const (
	// OpFC is a dense y = f(Wx + b) layer.
	OpFC OpKind = iota
	// OpFCLateral is a dense layer whose pre-activation also includes a
	// lateral (same-layer) recurrent term L*h, as in a Boltzmann machine.
	OpFCLateral
	// OpConv is a valid 2-D convolution.
	OpConv
	// OpPool is non-overlapping max pooling.
	OpPool
	// OpElemwise is an element-wise vector operation pass (activation
	// chains, gate combinations).
	OpElemwise
	// OpSample draws a random vector and thresholds it against
	// probabilities (Gibbs sampling / dropout).
	OpSample
	// OpOuterUpdate is an outer-product weight update W += eta*a b^T.
	OpOuterUpdate
	// OpBackFC is the backward contraction delta = W^T d (vector times
	// matrix).
	OpBackFC
	// OpDistance computes squared distances of an input against a set of
	// prototype vectors (SOM BMU search).
	OpDistance
	// OpArgExtreme scans a vector for its maximum/minimum (BMU pick,
	// winner take all).
	OpArgExtreme
)

func (k OpKind) String() string {
	switch k {
	case OpFC:
		return "fc"
	case OpFCLateral:
		return "fc-lateral"
	case OpConv:
		return "conv"
	case OpPool:
		return "pool"
	case OpElemwise:
		return "elemwise"
	case OpSample:
		return "sample"
	case OpOuterUpdate:
		return "outer-update"
	case OpBackFC:
		return "back-fc"
	case OpDistance:
		return "distance"
	case OpArgExtreme:
		return "arg-extreme"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Activation names the non-linearity applied after an op.
type Activation uint8

const (
	ActNone Activation = iota
	ActSigmoid
	ActTanh
	ActSign // bipolar threshold (Hopfield)
)

// Op is one layer-level operation with its dimensions.
type Op struct {
	Kind OpKind
	Act  Activation

	// In and Out are vector dimensions for FC-like, elementwise, sample,
	// distance and reduction ops. For OpDistance, In is the input
	// dimension and Out the number of prototypes.
	In, Out int

	// Convolution / pooling geometry ([y][x][c] layout).
	InC, InH, InW int
	OutC, K       int

	// Repeat is the trip count of this op inside the benchmark (e.g.
	// timesteps of an RNN, Gibbs iterations). Zero means 1.
	Repeat int

	// SharedParams marks ops that reuse another op's weights (tied
	// weights: an RBM's reverse direction), contributing no parameter
	// footprint of their own.
	SharedParams bool
}

// Times returns the effective repeat count.
func (o Op) Times() int {
	if o.Repeat <= 0 {
		return 1
	}
	return o.Repeat
}

// OutH and OutW give convolution/pooling output geometry.
func (o Op) OutH() int {
	if o.Kind == OpPool {
		return o.InH / o.K
	}
	return o.InH - o.K + 1
}

func (o Op) OutW() int {
	if o.Kind == OpPool {
		return o.InW / o.K
	}
	return o.InW - o.K + 1
}

// MACs returns the multiply-accumulate count of one repetition.
func (o Op) MACs() int64 {
	switch o.Kind {
	case OpFC:
		return int64(o.In) * int64(o.Out)
	case OpFCLateral:
		return int64(o.In)*int64(o.Out) + int64(o.Out)*int64(o.Out)
	case OpConv:
		return int64(o.OutH()) * int64(o.OutW()) * int64(o.OutC) * int64(o.K*o.K*o.InC)
	case OpOuterUpdate, OpBackFC:
		return int64(o.In) * int64(o.Out)
	case OpDistance:
		return int64(o.In) * int64(o.Out) // one multiply per element per prototype
	default:
		return 0
	}
}

// VectorElems returns the element-wise (non-MAC) operation count of one
// repetition: activations, comparisons, pooling merges, sampling.
func (o Op) VectorElems() int64 {
	switch o.Kind {
	case OpFC, OpFCLateral, OpBackFC:
		if o.Act == ActNone {
			return int64(o.Out)
		}
		return 4 * int64(o.Out) // exp, +1, div (sigmoid chain)
	case OpConv:
		return 4 * int64(o.OutH()) * int64(o.OutW()) * int64(o.OutC)
	case OpPool:
		return int64(o.InH) * int64(o.InW) * int64(o.InC) // one compare per input element
	case OpElemwise:
		return int64(o.Out)
	case OpSample:
		return 2 * int64(o.Out) // draw + compare
	case OpDistance:
		return 2 * int64(o.In) * int64(o.Out) // subtract + square handled as MACs? keep sub+acc
	case OpArgExtreme:
		return int64(o.In)
	case OpOuterUpdate:
		return 2 * int64(o.In) * int64(o.Out) // scale + accumulate
	default:
		return 0
	}
}

// TranscendentalElems counts exp/log element evaluations of one repetition.
func (o Op) TranscendentalElems() int64 {
	switch o.Act {
	case ActSigmoid, ActTanh:
		switch o.Kind {
		case OpConv:
			return int64(o.OutH()) * int64(o.OutW()) * int64(o.OutC)
		default:
			return int64(o.Out)
		}
	}
	return 0
}

// ParamBytes returns the parameter footprint (16-bit elements) of one
// repetition's weights.
func (o Op) ParamBytes() int64 {
	if o.SharedParams {
		return 0
	}
	switch o.Kind {
	case OpFC, OpBackFC, OpOuterUpdate:
		return 2 * (int64(o.In)*int64(o.Out) + int64(o.Out))
	case OpFCLateral:
		return 2 * (int64(o.In)*int64(o.Out) + int64(o.Out)*int64(o.Out) + int64(o.Out))
	case OpConv:
		return 2 * (int64(o.OutC)*int64(o.K*o.K*o.InC) + int64(o.OutC))
	case OpDistance:
		return 2 * int64(o.In) * int64(o.Out)
	default:
		return 0
	}
}
