package asm

import (
	"testing"

	"cambricon/internal/core"
)

// FuzzAssemble checks that arbitrary source text never panics the
// assembler and that anything it accepts is a valid, encodable program
// whose disassembly reassembles to the same instructions.
func FuzzAssemble(f *testing.F) {
	f.Add("\tSMOVE $1, #5\n")
	f.Add("loop:\tSADD $1, $1, #-1\n\tCB #loop, $1\n")
	f.Add("\tVLOAD $3, $0, #100\n")
	f.Add("\tMMV $7, $1, $4, $3, $0\n")
	f.Add(".data 100: 0.5, -1\n\tSMOVE $1, #0\n")
	f.Add("x::: $$$ ###\n")
	f.Add("\tCB #1, $1\n") // offset leaving the program: still encodable
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for i, inst := range p.Instructions {
			if verr := inst.Validate(); verr != nil {
				t.Fatalf("accepted invalid instruction %d: %v", i, verr)
			}
		}
		if _, err := core.EncodeProgram(p.Instructions); err != nil {
			t.Fatalf("accepted unencodable program: %v", err)
		}
		text := Disassemble(p.Instructions)
		back, err := Assemble(text)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
		if len(back.Instructions) != len(p.Instructions) {
			t.Fatalf("round trip changed length %d -> %d", len(p.Instructions), len(back.Instructions))
		}
		for i := range p.Instructions {
			if back.Instructions[i] != p.Instructions[i] {
				t.Fatalf("round trip changed instruction %d", i)
			}
		}
	})
}

// FuzzDecode checks that arbitrary 64-bit words never panic the decoder and
// that every decodable word re-encodes to itself modulo unused bits.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0x0180000000000005))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, w uint64) {
		inst, err := core.Decode(w)
		if err != nil {
			return
		}
		w2, err := core.Encode(inst)
		if err != nil {
			t.Fatalf("decoded instruction does not re-encode: %v", err)
		}
		inst2, err := core.Decode(w2)
		if err != nil || inst2 != inst {
			t.Fatalf("re-encode not stable: %v vs %v", inst, inst2)
		}
	})
}
