package asm

import (
	"fmt"
	"strings"

	"cambricon/internal/core"
)

// Arg is one operand in Builder emissions.
type Arg struct {
	text string
}

// R names a GPR operand.
func R(n uint8) Arg { return Arg{text: fmt.Sprintf("$%d", n)} }

// Imm is a numeric immediate operand.
func Imm(v int32) Arg { return Arg{text: fmt.Sprintf("#%d", v)} }

// Lbl is a label-reference operand (branch targets).
func Lbl(name string) Arg { return Arg{text: "#" + name} }

// Builder programmatically emits Cambricon assembly source. It is the
// back end of internal/codegen: generated programs remain human-readable
// text (so the Fig. 10 "code length" metric is literally the listing
// length) and go through the same assembler as hand-written code.
type Builder struct {
	lines     []string
	nextLabel int
}

// Op emits one instruction.
func (b *Builder) Op(op core.Opcode, args ...Arg) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.text
	}
	b.lines = append(b.lines, "\t"+op.String()+" "+strings.Join(parts, ", "))
}

// Opc emits one instruction with a trailing comment.
func (b *Builder) Opc(op core.Opcode, comment string, args ...Arg) {
	b.Op(op, args...)
	b.lines[len(b.lines)-1] += " // " + comment
}

// Comment emits a standalone comment line.
func (b *Builder) Comment(format string, args ...any) {
	b.lines = append(b.lines, "\t// "+fmt.Sprintf(format, args...))
}

// Label places a label at the current position.
func (b *Builder) Label(name string) {
	b.lines = append(b.lines, name+":")
}

// NewLabel reserves a fresh unique label name with the given prefix. The
// label must still be placed with Label.
func (b *Builder) NewLabel(prefix string) string {
	b.nextLabel++
	return fmt.Sprintf("%s_%d", prefix, b.nextLabel)
}

// Source returns the accumulated assembly text.
func (b *Builder) Source() string { return strings.Join(b.lines, "\n") + "\n" }

// Assemble assembles the accumulated source.
func (b *Builder) Assemble() (*Program, error) { return Assemble(b.Source()) }
