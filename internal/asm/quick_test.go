package asm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cambricon/internal/core"
)

// randProgram builds a random structurally-valid program: arbitrary
// non-control instructions with in-range operands, plus backward/forward
// branches that stay inside the program.
func randProgram(r *rand.Rand, n int) []core.Instruction {
	ops := core.Opcodes()
	prog := make([]core.Instruction, n)
	for pc := range prog {
		op := ops[r.Intn(len(ops))]
		f := op.Format()
		inst := core.Instruction{Op: op}
		tailImm := f.Tail == core.TailImm || (f.Tail == core.TailRegImm && r.Intn(2) == 0)
		if op.IsBranch() && tailImm {
			// Keep the target inside [0, n] so disassembly labels it.
			target := r.Intn(n + 1)
			inst.TailImm = true
			inst.Imm = int32(target - pc)
		} else if tailImm {
			inst.TailImm = true
			inst.Imm = int32(r.Uint32())
		}
		nregs := f.Regs
		if f.Tail == core.TailRegImm && !inst.TailImm {
			nregs++
		}
		for i := 0; i < nregs; i++ {
			inst.R[i] = uint8(r.Intn(core.NumGPRs))
		}
		prog[pc] = inst
	}
	return prog
}

// Property: disassembling any structurally-valid program and reassembling
// it reproduces the identical instruction sequence.
func TestQuickDisassembleAssembleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randProgram(r, 1+r.Intn(40))
		text := Disassemble(prog)
		back, err := Assemble(text)
		if err != nil {
			t.Logf("reassembly failed: %v\n%s", err, text)
			return false
		}
		if len(back.Instructions) != len(prog) {
			return false
		}
		for i := range prog {
			if back.Instructions[i] != prog[i] {
				t.Logf("instruction %d: %v != %v\n%s", i, back.Instructions[i], prog[i], text)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: binary encode/decode of any structurally-valid program is the
// identity.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randProgram(r, 1+r.Intn(40))
		img, err := core.EncodeProgram(prog)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		back, err := core.DecodeProgram(img)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		for i := range prog {
			if back[i] != prog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
