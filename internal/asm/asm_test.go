package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cambricon/internal/core"
)

// The Fig. 7 MLP fragment. The paper's listings omit scalar setup "for the
// sake of brevity"; we use the $63 base-register convention (see the
// assembler's short-form docs) for absolute main-memory addresses.
const mlpSrc = `
	// $0: input size, $1: output size, $2: matrix size
	// $3: input address, $4: weight address
	// $5: bias address, $6: output address
	// $7-$10: temp variable address
	VLOAD  $3, $0, #100       // load input vector from address (100)
	MLOAD  $4, $2, #300       // load weight matrix from address (300)
	MMV    $7, $1, $4, $3, $0 // Wx
	VAV    $8, $1, $7, $5     // tmp = Wx + b
	VEXP   $9, $1, $8         // exp(tmp)
	VAS    $10, $1, $9, #256  // 1 + exp(tmp)   (fixed-point 1.0 = 256)
	VDV    $6, $1, $9, $10    // y = exp(tmp)/(1+exp(tmp))
	VSTORE $6, $1, #200       // store output vector to address (200)
`

// The Fig. 7 pooling fragment.
const poolingSrc = `
	// $0: feature map size, $1: input data size
	// $2: output data size, $3: pooling window size - 1
	// $4: x-axis loop num, $5: y-axis loop num
	// $6: input addr, $7: output addr
	// $8: y-axis stride of input
	VLOAD  $6, $1, #100     // load input neurons from address (100)
	SMOVE  $5, $3           // init y
L0:	SMOVE  $4, $3           // init x
L1:	VGTM   $7, $0, $6, $7   // output[m] = max(input[x][y][m], output[m])
	SADD   $6, $6, $0       // update input address
	SADD   $4, $4, #-1      // x--
	CB     #L1, $4          // if (x > 0) goto L1
	SADD   $6, $6, $8       // update input address
	SADD   $5, $5, #-1      // y--
	CB     #L0, $5          // if (y > 0) goto L0
	VSTORE $7, $2, #200     // store output neurons to address (200)
`

// The Fig. 7 BM fragment.
const bmSrc = `
	// $0: visible vector size, $1: hidden vector size, $2: W size
	// $3: L size, $4: visible vector address, $5: W address
	// $6: L address, $7: bias address, $8: hidden vector address
	// $9-$17: temp variable address
	VLOAD  $4, $0, #100        // load visible vector
	VLOAD  $9, $1, #200        // load hidden vector
	MLOAD  $5, $2, #300        // load W matrix
	MLOAD  $6, $3, #400        // load L matrix
	MMV    $10, $1, $5, $4, $0 // Wv
	MMV    $11, $1, $6, $9, $1 // Lh
	VAV    $12, $1, $10, $11   // Wv + Lh
	VAV    $13, $1, $12, $7    // tmp = Wv + Lh + b
	VEXP   $14, $1, $13        // exp(tmp)
	VAS    $15, $1, $14, #256  // 1 + exp(tmp)
	VDV    $16, $1, $14, $15   // y = exp(tmp)/(1+exp(tmp))
	RV     $17, $1             // r[i] = random(0,1)
	VGT    $8, $1, $17, $16    // h[i] = (r[i] > y[i]) ? 1 : 0
	VSTORE $8, $1, #500        // store hidden vector
`

func TestAssembleFig7MLP(t *testing.T) {
	p, err := Assemble(mlpSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's MLP fragment is 8 instructions (Section V-B2 notes MLP's
	// very high code density).
	if p.Len() != 8 {
		t.Fatalf("MLP fragment length %d, want 8", p.Len())
	}
	wantOps := []core.Opcode{core.VLOAD, core.MLOAD, core.MMV, core.VAV,
		core.VEXP, core.VAS, core.VDV, core.VSTORE}
	for i, op := range wantOps {
		if p.Instructions[i].Op != op {
			t.Errorf("instruction %d: got %v want %v", i, p.Instructions[i].Op, op)
		}
	}
	// VLOAD short form fills the $63 base-register convention.
	ld := p.Instructions[0]
	if ld.R[0] != 3 || ld.R[1] != 0 || ld.R[2] != 63 || ld.Imm != 100 || !ld.TailImm {
		t.Errorf("VLOAD lowering: %+v", ld)
	}
	mmv := p.Instructions[2]
	if mmv.R != [5]uint8{7, 1, 4, 3, 0} {
		t.Errorf("MMV operands: %v", mmv.R)
	}
}

func TestAssembleFig7Pooling(t *testing.T) {
	p, err := Assemble(poolingSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 11 {
		t.Fatalf("pooling fragment length %d, want 11", p.Len())
	}
	if p.Labels["L0"] != 2 || p.Labels["L1"] != 3 {
		t.Errorf("labels: %v", p.Labels)
	}
	// CB #L1, $4 at pc 6 must encode offset L1-6 = -3 with predictor $4.
	cb := p.Instructions[6]
	if cb.Op != core.CB || cb.R[0] != 4 || cb.Imm != -3 || !cb.TailImm {
		t.Errorf("CB lowering: %+v", cb)
	}
	// CB #L0, $5 at pc 9: offset 2-9 = -7.
	if got := p.Instructions[9]; got.Imm != -7 || got.R[0] != 5 {
		t.Errorf("outer CB lowering: %+v", got)
	}
}

func TestAssembleFig7BM(t *testing.T) {
	p, err := Assemble(bmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 14 {
		t.Fatalf("BM fragment length %d, want 14", p.Len())
	}
	rv := p.Instructions[11]
	if rv.Op != core.RV || rv.R[0] != 17 || rv.R[1] != 1 {
		t.Errorf("RV lowering: %+v", rv)
	}
}

func TestFig7TypeMix(t *testing.T) {
	p := mustAssemble(t, poolingSrc)
	mix := p.TypeMix()
	if mix[core.TypeControl] != 2 {
		t.Errorf("control count %d, want 2", mix[core.TypeControl])
	}
	if mix[core.TypeDataTransfer] != 4 { // VLOAD, VSTORE, 2x SMOVE
		t.Errorf("data transfer count %d, want 4", mix[core.TypeDataTransfer])
	}
	if mix[core.TypeVector] != 1 { // VGTM
		t.Errorf("vector count %d, want 1", mix[core.TypeVector])
	}
	if mix[core.TypeScalar] != 4 { // 4x SADD
		t.Errorf("scalar count %d, want 4", mix[core.TypeScalar])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "\tFOO $1", "unknown instruction"},
		{"bad register", "\tSADD $64, $1, $2", "bad register"},
		{"bad operand", "\tSADD %1, $1, $2", "bad operand"},
		{"operand count", "\tSADD $1, $2", "takes 3 operands"},
		{"too many operands", "\tJUMP #1, #2", "takes 1 operands"},
		{"undefined label", "\tJUMP #nowhere", "undefined label"},
		{"duplicate label", "a:\n\tSMOVE $1, #0\na:\n\tSMOVE $1, #0", "duplicate label"},
		{"label on non-branch", "x:\tSMOVE $1, #x", "label operand on non-branch"},
		{"register where imm required", "\tVLOAD $1, $2, $3, $4", "must be an immediate"},
		{"imm where reg required", "\tVAV #1, $2, $3, $4", "must be a register"},
		{"bad label", "9bad:\tSMOVE $1, #0", "invalid label"},
		{"empty operand", "\tSADD $1, , $2", "empty operand"},
		{"empty immediate", "\tSMOVE $1, #", "empty immediate"},
		{"huge immediate", "\tSMOVE $1, #4294967296", "32 bits"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("\tSMOVE $1, #0\n\tSMOVE $1, #0\n\tBOGUS $1\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if e, ok := err.(*Error); ok {
		ae = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line %d, want 3", ae.Line)
	}
}

func TestCaseInsensitiveMnemonics(t *testing.T) {
	p, err := Assemble("\tsmove $1, #5\n\tSmOvE $2, $1\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
}

func TestHexImmediates(t *testing.T) {
	p := mustAssemble(t, "\tSMOVE $1, #0x10\n")
	if p.Instructions[0].Imm != 16 {
		t.Errorf("hex immediate: %d", p.Instructions[0].Imm)
	}
}

func TestLabelAtEndOfProgram(t *testing.T) {
	p, err := Assemble("\tCB #end, $1\n\tSMOVE $2, #0\nend:\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions[0].Imm != 2 {
		t.Errorf("forward offset to end: %d", p.Instructions[0].Imm)
	}
}

func TestStandaloneAndSharedLabels(t *testing.T) {
	src := `
start:
loop:	SADD $1, $1, #-1
	CB #loop, $1
	JUMP #start
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["start"] != 0 || p.Labels["loop"] != 0 {
		t.Errorf("labels %v", p.Labels)
	}
	if p.Instructions[2].Imm != -2 {
		t.Errorf("JUMP offset %d, want -2", p.Instructions[2].Imm)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	for _, src := range []string{mlpSrc, poolingSrc, bmSrc} {
		p1 := mustAssemble(t, src)
		text := Disassemble(p1.Instructions)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("reassemble failed: %v\n%s", err, text)
		}
		if p2.Len() != p1.Len() {
			t.Fatalf("round trip length %d != %d", p2.Len(), p1.Len())
		}
		for i := range p1.Instructions {
			if p1.Instructions[i] != p2.Instructions[i] {
				t.Errorf("instruction %d: %v != %v", i, p1.Instructions[i], p2.Instructions[i])
			}
		}
	}
}

func TestDisassembleLabelsBranches(t *testing.T) {
	p := mustAssemble(t, poolingSrc)
	text := Disassemble(p.Instructions)
	if !strings.Contains(text, "L0:") || !strings.Contains(text, "CB #L1, $4") {
		t.Errorf("disassembly missing labels:\n%s", text)
	}
}

func TestBuilder(t *testing.T) {
	var b Builder
	b.Comment("tiny loop")
	b.Op(core.SMOVE, R(1), Imm(3))
	top := b.NewLabel("loop")
	b.Label(top)
	b.Opc(core.SADD, "decrement", R(1), R(1), Imm(-1))
	b.Op(core.CB, Lbl(top), R(1))
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("%v\n%s", err, b.Source())
	}
	if p.Len() != 3 {
		t.Fatalf("len %d", p.Len())
	}
	if p.Instructions[2].Imm != -1 {
		t.Errorf("loop offset %d", p.Instructions[2].Imm)
	}
	if !strings.Contains(b.Source(), "// decrement") {
		t.Error("missing comment")
	}
}

func TestBuilderUniqueLabels(t *testing.T) {
	var b Builder
	if b.NewLabel("x") == b.NewLabel("x") {
		t.Error("NewLabel must return unique names")
	}
}

func TestTestdataProgramsAssemble(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.cam")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Assemble(string(src))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if p.Len() == 0 {
			t.Errorf("%s: empty program", f)
		}
	}
}

func TestDataDirective(t *testing.T) {
	p, err := Assemble(`
.data 100: 0.5, -1, 0.25
.data 2048: 1
	SMOVE $1, #3
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 2 {
		t.Fatalf("%d data chunks", len(p.Data))
	}
	if p.Data[0].Addr != 100 || len(p.Data[0].Values) != 3 {
		t.Errorf("chunk 0: %+v", p.Data[0])
	}
	if got := p.Data[0].Values[1].Float(); got != -1 {
		t.Errorf("value = %v", got)
	}
	if p.Len() != 1 {
		t.Errorf("data lines must not count as instructions")
	}
	bad := []string{
		".data : 1\n", ".data 5\n", ".data x: 1\n", ".data 5: \n",
		".data 5: 1, , 2\n", ".data -4: 1\n", ".data 5: zz\n",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("bad directive %q accepted", src)
		}
	}
}
