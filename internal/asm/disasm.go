package asm

import (
	"fmt"
	"strings"

	"cambricon/internal/core"
)

// Disassemble renders a program back to assembly text. Immediate branch
// targets are rebuilt as labels (L0, L1, ... in address order); all other
// operands print in canonical instruction syntax. The output re-assembles to
// the same instruction sequence.
func Disassemble(prog []core.Instruction) string {
	// Collect branch targets that resolve inside the program.
	targets := map[int]string{}
	var order []int
	for pc, inst := range prog {
		if inst.Op.IsBranch() && inst.TailImm {
			t := pc + int(inst.Imm)
			if t >= 0 && t <= len(prog) {
				if _, seen := targets[t]; !seen {
					targets[t] = ""
					order = append(order, t)
				}
			}
		}
	}
	// Name labels in address order for stable output.
	sortInts(order)
	for i, t := range order {
		targets[t] = fmt.Sprintf("L%d", i)
	}

	var b strings.Builder
	for pc, inst := range prog {
		if name, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		line := inst.String()
		if inst.Op.IsBranch() && inst.TailImm {
			if name, ok := targets[pc+int(inst.Imm)]; ok {
				// Replace the numeric offset with the label, using the
				// paper's target-first operand order for CB.
				switch inst.Op {
				case core.JUMP:
					line = fmt.Sprintf("JUMP #%s", name)
				case core.CB:
					line = fmt.Sprintf("CB #%s, $%d", name, inst.R[0])
				}
			}
		}
		fmt.Fprintf(&b, "\t%s\n", line)
	}
	if name, ok := targets[len(prog)]; ok {
		fmt.Fprintf(&b, "%s:\n", name)
	}
	return b.String()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
