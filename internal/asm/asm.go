// Package asm implements the Cambricon assembler and disassembler.
//
// The accepted syntax follows the paper's program listings (Fig. 7):
//
//	// comment
//	        VLOAD  $3, $0, $63, #100   // load input neurons
//	L0:     SMOVE  $4, $3
//	        SADD   $4, $4, #-1
//	        CB     #L0, $4             // if ($4 != 0) goto L0
//	        JUMP   #done
//	done:   SMOVE  $0, #0
//
// Operands are GPRs written $0..$63 and immediates written #value, where
// value is a decimal or 0x-hex integer or a label. Branch and jump offsets
// are PC-relative and counted in instructions; the assembler resolves labels
// to offsets. A label may share a line with an instruction or stand alone.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"cambricon/internal/core"
	"cambricon/internal/fixed"
)

// Program is an assembled Cambricon program.
type Program struct {
	// Instructions in program order.
	Instructions []core.Instruction
	// Labels maps label names to instruction indices.
	Labels map[string]int
	// Lines maps each instruction to its 1-based source line, for
	// diagnostics. Empty when the program was built programmatically.
	Lines []int
	// Data holds the main-memory image declared by .data directives.
	Data []DataChunk
}

// DataChunk is one .data directive: fixed-point values to place in main
// memory before the program runs.
//
//	.data 1000: 0.5, -1, 0.25
type DataChunk struct {
	Addr   int
	Values []fixed.Num
}

// Len returns the instruction count (the paper's "code length" metric,
// Section V-B2).
func (p *Program) Len() int { return len(p.Instructions) }

// TypeMix counts instructions per Fig. 11 category.
func (p *Program) TypeMix() map[core.Type]int {
	mix := make(map[core.Type]int, core.NumTypes)
	for _, inst := range p.Instructions {
		mix[inst.Op.Type()]++
	}
	return mix
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// operand is one parsed operand: either a register, a numeric immediate, or
// a label reference (resolved in pass two).
type operand struct {
	isReg bool
	reg   uint8
	isLbl bool
	label string
	imm   int64
}

// srcInst is one parsed instruction before label resolution.
type srcInst struct {
	line int
	op   core.Opcode
	args []operand
}

// Assemble parses and encodes a Cambricon assembly source.
func Assemble(src string) (*Program, error) {
	lines := strings.Split(src, "\n")
	labels := make(map[string]int)
	var insts []srcInst
	var dataChunks []DataChunk

	// Pass one: tokenize, record label positions.
	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		// Data directives place fixed-point values in main memory.
		if strings.HasPrefix(line, ".data") {
			chunk, err := parseData(lineNo, line)
			if err != nil {
				return nil, err
			}
			dataChunks = append(dataChunks, chunk)
			continue
		}
		// Labels: one or more "name:" prefixes.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !isIdent(name) {
				return nil, errf(lineNo, "invalid label %q", name)
			}
			if _, dup := labels[name]; dup {
				return nil, errf(lineNo, "duplicate label %q", name)
			}
			labels[name] = len(insts)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		inst, err := parseInstruction(lineNo, line)
		if err != nil {
			return nil, err
		}
		insts = append(insts, inst)
	}

	// Pass two: resolve labels and map operands onto formats.
	prog := &Program{Labels: labels, Data: dataChunks}
	for pc, si := range insts {
		inst, err := lowerInstruction(si, pc, labels)
		if err != nil {
			return nil, err
		}
		if verr := inst.Validate(); verr != nil {
			return nil, errf(si.line, "%v", verr)
		}
		prog.Instructions = append(prog.Instructions, inst)
		prog.Lines = append(prog.Lines, si.line)
	}
	return prog, nil
}

func parseInstruction(lineNo int, line string) (srcInst, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToUpper(fields[0])
	op, ok := core.ByName(mnemonic)
	if !ok {
		return srcInst{}, errf(lineNo, "unknown instruction %q", fields[0])
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	si := srcInst{line: lineNo, op: op}
	if rest == "" {
		return si, nil
	}
	for _, part := range strings.Split(rest, ",") {
		tok := strings.TrimSpace(part)
		if tok == "" {
			return srcInst{}, errf(lineNo, "empty operand in %q", line)
		}
		arg, err := parseOperand(lineNo, tok)
		if err != nil {
			return srcInst{}, err
		}
		si.args = append(si.args, arg)
	}
	return si, nil
}

func parseOperand(lineNo int, tok string) (operand, error) {
	switch tok[0] {
	case '$':
		n, err := strconv.ParseUint(tok[1:], 10, 8)
		if err != nil || n >= core.NumGPRs {
			return operand{}, errf(lineNo, "bad register %q (want $0..$%d)", tok, core.NumGPRs-1)
		}
		return operand{isReg: true, reg: uint8(n)}, nil
	case '#':
		body := tok[1:]
		if body == "" {
			return operand{}, errf(lineNo, "empty immediate %q", tok)
		}
		if v, err := strconv.ParseInt(body, 0, 64); err == nil {
			if v < -(1<<31) || v > (1<<31)-1 {
				return operand{}, errf(lineNo, "immediate %s does not fit in 32 bits", body)
			}
			return operand{imm: v}, nil
		}
		if !isIdent(body) {
			return operand{}, errf(lineNo, "bad immediate %q", tok)
		}
		return operand{isLbl: true, label: body}, nil
	default:
		return operand{}, errf(lineNo, "bad operand %q (want $reg or #imm)", tok)
	}
}

// BaseReg is the software-convention base register: main-memory transfer
// instructions written in the short absolute form of the paper's listings
// ("VLOAD $3, $0, #100") are expanded by the assembler with $63 as the
// base-register operand. Programs using the short form must keep $63 zero
// (the simulator resets all GPRs to zero).
const BaseReg = 63

func lowerInstruction(si srcInst, pc int, labels map[string]int) (core.Instruction, error) {
	f := si.op.Format()
	want := f.Operands()
	args := si.args
	// Short absolute form for main-memory transfers: insert the $63 base
	// register before the offset immediate.
	if isMemTransfer(si.op) && len(args) == want-1 {
		expanded := make([]operand, 0, want)
		expanded = append(expanded, args[:len(args)-1]...)
		expanded = append(expanded, operand{isReg: true, reg: BaseReg})
		expanded = append(expanded, args[len(args)-1])
		args = expanded
	}
	if len(args) != want {
		return core.Instruction{}, errf(si.line, "%v takes %d operands, got %d", si.op, want, len(si.args))
	}
	// The paper writes branches target-first ("CB #L1, $4"): accept both
	// target-first and predictor-first by rotating the offset operand to
	// the tail position.
	if si.op == core.CB && len(args) == 2 && !args[0].isReg {
		args = []operand{args[1], args[0]}
	}
	inst := core.Instruction{Op: si.op}
	for i := 0; i < f.Regs; i++ {
		if !args[i].isReg {
			return core.Instruction{}, errf(si.line, "%v operand %d must be a register", si.op, i+1)
		}
		inst.R[i] = args[i].reg
	}
	if f.Tail == core.TailNone {
		return inst, nil
	}
	tail := args[want-1]
	switch {
	case tail.isReg:
		if f.Tail == core.TailImm {
			return core.Instruction{}, errf(si.line, "%v operand %d must be an immediate", si.op, want)
		}
		inst.R[f.Regs] = tail.reg
	case tail.isLbl:
		target, ok := labels[tail.label]
		if !ok {
			return core.Instruction{}, errf(si.line, "undefined label %q", tail.label)
		}
		if !si.op.IsBranch() {
			return core.Instruction{}, errf(si.line, "label operand on non-branch %v", si.op)
		}
		inst.TailImm = true
		inst.Imm = int32(target - pc)
	default:
		inst.TailImm = true
		inst.Imm = int32(tail.imm)
	}
	return inst, nil
}

// isMemTransfer reports whether op addresses main memory through a base
// register + offset pair and therefore supports the short absolute form.
func isMemTransfer(op core.Opcode) bool {
	switch op {
	case core.VLOAD, core.VSTORE, core.MLOAD, core.MSTORE, core.SLOAD, core.SSTORE:
		return true
	default:
		return false
	}
}

// parseData parses ".data ADDR: v0, v1, ..." with float values.
func parseData(lineNo int, line string) (DataChunk, error) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ".data"))
	colon := strings.Index(body, ":")
	if colon < 0 {
		return DataChunk{}, errf(lineNo, ".data wants \".data ADDR: v0, v1, ...\"")
	}
	addr, err := strconv.Atoi(strings.TrimSpace(body[:colon]))
	if err != nil || addr < 0 {
		return DataChunk{}, errf(lineNo, "bad .data address %q", body[:colon])
	}
	var vals []fixed.Num
	for _, f := range strings.Split(body[colon+1:], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return DataChunk{}, errf(lineNo, "empty value in .data")
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return DataChunk{}, errf(lineNo, "bad .data value %q", f)
		}
		vals = append(vals, fixed.FromFloat(v))
	}
	if len(vals) == 0 {
		return DataChunk{}, errf(lineNo, ".data has no values")
	}
	return DataChunk{Addr: addr, Values: vals}, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
