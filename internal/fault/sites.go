package fault

// Geometry bounds the fault-site coordinate space of one benchmark run:
// how many dynamic instructions the golden run commits and how large the
// faultable structures are. The campaign fills it from the golden run so
// generated sites always land inside live state.
type Geometry struct {
	// Instructions is the golden run's dynamic instruction count.
	Instructions int64 `json:"instructions"`
	// GPRs is the scalar register-file size.
	GPRs int `json:"gprs"`
	// VectorSpadWords and MatrixSpadWords are the scratchpad capacities
	// in 16-bit elements.
	VectorSpadWords int `json:"vector_spad_words"`
	MatrixSpadWords int `json:"matrix_spad_words"`
	// VectorLanes and MatrixLanes are the per-unit lane counts.
	VectorLanes int `json:"vector_lanes"`
	MatrixLanes int `json:"matrix_lanes"`
}

// rng is a splitmix64 stream: tiny, fast, and stable across platforms,
// which is what keeps campaign reports byte-identical for a given seed.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// intn returns a value in [0, n); n <= 0 yields 0.
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Sites derives n deterministic fault sites from seed, bounded by geo.
// Models rotate round-robin so every sweep covers the whole taxonomy;
// coordinates are drawn from the seeded stream. The same (seed, n, geo)
// always yields the same slice.
func Sites(seed uint64, n int, geo Geometry) []Fault {
	return SitesOf(seed, n, geo, nil)
}

// SitesOf is Sites restricted to a model subset: sites rotate round-robin
// over models instead of the full taxonomy, drawing coordinates from the
// same seeded stream. A nil or empty subset means all models,
// byte-identical to Sites; the same (seed, n, geo, models) always yields
// the same slice.
func SitesOf(seed uint64, n int, geo Geometry, models []Model) []Fault {
	if n <= 0 {
		return nil
	}
	if len(models) == 0 {
		models = []Model{ModelSpadBit, ModelGPRBit, ModelFetchBit, ModelDMABit, ModelStuckLane}
	}
	r := &rng{s: seed}
	at := func() int64 {
		if geo.Instructions <= 0 {
			return 0
		}
		return int64(r.next() % uint64(geo.Instructions))
	}
	sites := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Model: models[i%len(models)]}
		switch f.Model {
		case ModelSpadBit:
			f.At = at()
			f.Bit = uint8(r.intn(16))
			if r.next()&1 == 0 {
				f.Space = SpaceVector
				f.Word = r.intn(geo.VectorSpadWords)
			} else {
				f.Space = SpaceMatrix
				f.Word = r.intn(geo.MatrixSpadWords)
			}
		case ModelGPRBit:
			f.At = at()
			f.Bit = uint8(r.intn(32))
			f.Reg = uint8(r.intn(geo.GPRs))
		case ModelFetchBit:
			f.At = at()
			f.Bit = uint8(r.intn(64))
		case ModelDMABit:
			f.At = at()
			f.Bit = uint8(r.intn(8))
			f.Byte = r.intn(1 << 16)
		case ModelStuckLane:
			f.Bit = uint8(r.intn(16))
			f.Val = uint8(r.next() & 1)
			if r.next()&1 == 0 {
				f.Unit = UnitVector
				f.Lane = r.intn(geo.VectorLanes)
			} else {
				f.Unit = UnitMatrix
				f.Lane = r.intn(geo.MatrixLanes)
			}
		}
		sites = append(sites, f)
	}
	return sites
}

// BenchSeed derives the per-benchmark site seed from the campaign seed
// and the benchmark name (FNV-1a), so adding or reordering benchmarks
// never shifts another benchmark's fault sites.
func BenchSeed(campaignSeed uint64, name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return campaignSeed ^ h
}
