package fault

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cambricon/internal/metrics"
)

// Outcome classifies one faulted run against its golden twin.
type Outcome uint8

const (
	// OutcomeMasked: the run finished and its result region is
	// byte-identical to the golden run — the fault was absorbed.
	OutcomeMasked Outcome = iota
	// OutcomeSDC: the run finished "successfully" but its result region
	// differs — silent data corruption, the worst class.
	OutcomeSDC
	// OutcomeDetected: the simulator surfaced a structured error
	// (undecodable fetch, runtime fault) instead of finishing.
	OutcomeDetected
	// OutcomeHang: the watchdog fired — the program exceeded its cycle
	// budget without committing its last instruction.
	OutcomeHang
	// OutcomeCrash: the run panicked and was recovered by the harness.
	OutcomeCrash

	// NumOutcomes sizes tallies.
	NumOutcomes = 5
)

var outcomeNames = [NumOutcomes]string{
	"masked", "sdc", "detected", "hang", "crash",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// MarshalText renders the outcome name into reports.
func (o Outcome) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses an outcome name.
func (o *Outcome) UnmarshalText(b []byte) error {
	for i, name := range outcomeNames {
		if string(b) == name {
			*o = Outcome(i)
			return nil
		}
	}
	return fmt.Errorf("fault: unknown outcome %q", b)
}

// Observation is what one simulation run (golden or faulted) produced,
// as reported by a Target.
type Observation struct {
	// Cycles and Instructions are the run's final counters (best-effort
	// for runs that did not finish).
	Cycles       int64
	Instructions int64
	// Output is the serialized result region the classification compares
	// (only meaningful when the run finished without error).
	Output []byte
	// Err is the structured error a detected fault surfaced as.
	Err error
	// Hung is set when the watchdog ended the run; Crashed when a panic
	// was recovered.
	Hung    bool
	Crashed bool
	// Geometry bounds the fault-site space (filled by golden runs).
	Geometry Geometry
}

// Classify maps one faulted observation to its outcome class. Crash and
// hang dominate; a structured error is a detected fault; otherwise the
// result region decides masked vs. silent data corruption.
func Classify(golden, obs Observation) Outcome {
	switch {
	case obs.Crashed:
		return OutcomeCrash
	case obs.Hung:
		return OutcomeHang
	case obs.Err != nil:
		return OutcomeDetected
	case bytes.Equal(golden.Output, obs.Output):
		return OutcomeMasked
	}
	return OutcomeSDC
}

// Target is one benchmark the campaign can run. It is implemented in
// internal/bench (the fault package cannot import the simulator without
// creating a cycle, for the same reason trace cannot).
type Target interface {
	// Name identifies the benchmark in reports.
	Name() string
	// Run executes the benchmark once with the given injector (nil for
	// the golden run) and cycle budget (0 = no watchdog) and reports
	// what happened. Run must recover its own panics into
	// Observation.Crashed and must be safe for concurrent calls.
	Run(inj Injector, maxCycles int64) Observation
}

// BufferedTarget is an optional Target extension that lets the campaign
// recycle each worker's output buffer across faulted runs instead of
// allocating a fresh Observation.Output every time.
type BufferedTarget interface {
	Target
	// RunBuf is Run with a caller-owned scratch buffer that may back
	// Observation.Output. The caller promises it is done with buf (and
	// any Output aliasing it) before the next RunBuf call on the same
	// buffer; distinct buffers are safe concurrently.
	RunBuf(inj Injector, maxCycles int64, buf []byte) Observation
}

// FastForwardTarget is an optional Target extension for O(sites)
// campaigns: the target keeps interval checkpoints of its golden run and
// services each transient fault site by restoring the nearest checkpoint
// at or before the site's dynamic index and simulating only the delta,
// instead of replaying the whole prefix on the observed (injected) path.
// Implementations must keep RunSiteBuf observationally identical to
// RunBuf with a retargeted injector — the campaign pins this with
// differential tests, and silently falls back to the buffered path when
// PrepareCheckpoints fails.
type FastForwardTarget interface {
	BufferedTarget
	// PrepareCheckpoints captures (or reuses) k evenly spaced mid-run
	// checkpoints of the fault-free run. It is called once per campaign
	// target, after the golden run, before any RunSiteBuf; an error
	// disables fast-forwarding for this target (the campaign falls back
	// to RunBuf).
	PrepareCheckpoints(k int) error
	// RunSiteBuf is RunBuf for one fault site, free to fast-forward from
	// a prepared checkpoint. Whole-run models (stuck-lane) and any other
	// site the target cannot fast-forward must produce their observation
	// by the ordinary path internally.
	RunSiteBuf(f Fault, maxCycles int64, buf []byte) Observation
}

// Campaign sweeps seeded fault sites across a set of benchmark targets.
type Campaign struct {
	// Seed drives site generation; the same seed yields a byte-identical
	// report.
	Seed uint64
	// Sites is the number of fault sites swept per benchmark.
	Sites int
	// Checkpoints, when positive, asks each FastForwardTarget to keep
	// that many interval checkpoints of its golden run and service fault
	// sites by restore-then-delta-simulate. Reports are byte-identical
	// with or without checkpoints; targets that do not implement
	// FastForwardTarget (or whose preparation fails) run unchanged.
	Checkpoints int
	// Models, when non-empty, restricts site generation to a model
	// subset (round-robin over the subset, see SitesOf). nil sweeps the
	// full taxonomy, byte-identical to campaigns before the field
	// existed.
	Models []Model
	// Workers bounds concurrent faulted runs within one target (<= 0
	// means GOMAXPROCS).
	Workers int
	// TargetWorkers bounds concurrently swept targets — the outer pool
	// on top of the per-site Workers pool, cheap now that each run draws
	// a pooled warm machine (<= 0 means GOMAXPROCS, capped at the target
	// count). The report bytes are independent of both worker counts.
	TargetWorkers int
	// WatchdogFactor scales each benchmark's golden cycle count into the
	// faulted runs' cycle budget (<= 0 means the default of 8x).
	WatchdogFactor int64
	// Metrics, when non-nil, receives campaign-level service metrics:
	// per-classification outcome counters and a swept-target counter.
	// nil (the default) is free, per the metrics package's nil contract.
	Metrics *metrics.Registry
}

// Metric names exported by an instrumented Campaign.
const (
	MetricFaultRuns        = "cambricon_fault_runs_total"
	MetricFaultTargets     = "cambricon_fault_targets_total"
	MetricFaultFastForward = "cambricon_fault_fastforward_runs_total"
)

// DefaultWatchdogFactor is the golden-cycles multiplier used when
// Campaign.WatchdogFactor is unset: generous enough for any fault that
// merely slows a run down, tight enough to classify real livelock fast.
const DefaultWatchdogFactor = 8

// Run executes the campaign: per target, one golden run, then Sites
// faulted runs classified against it. Targets fan out across a
// TargetWorkers outer pool, and the faulted runs of each target across
// a Workers inner pool; the assembled report is byte-identical for
// every combination of worker counts (per-target reports are assembled
// in target order, and each target's runs in site order). The context
// cancels the sweep between runs; a canceled campaign returns the error
// with a partial (but internally consistent) report discarded.
func (c *Campaign) Run(ctx context.Context, targets []Target) (*Report, error) {
	factor := c.WatchdogFactor
	if factor <= 0 {
		factor = DefaultWatchdogFactor
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := c.TargetWorkers
	if outer <= 0 {
		outer = runtime.GOMAXPROCS(0)
	}
	if outer > len(targets) {
		outer = len(targets)
	}
	rep := &Report{
		Schema:         Schema,
		Seed:           c.Seed,
		SitesPerBench:  c.Sites,
		WatchdogFactor: factor,
		Models:         c.Models,
	}

	// A failing target cancels the whole sweep; the parent context's own
	// cancellation is distinguished afterwards.
	sweepCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	reports := make([]*BenchmarkReport, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i], errs[i] = c.runTarget(sweepCtx, targets[i], factor, workers)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
dispatch:
	for i := range targets {
		select {
		case <-sweepCtx.Done():
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()

	// Deterministic error selection: the lowest-index real failure wins;
	// cancellation artifacts of the internal fan-out cancel (and targets
	// never dispatched) don't mask it. A parent-context cancellation with
	// no real failure surfaces as ctx.Err, like the serial sweep did.
	for i := range targets {
		if errs[i] != nil && !errors.Is(errs[i], context.Canceled) && !errors.Is(errs[i], context.DeadlineExceeded) {
			return nil, errs[i]
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if reports[i] == nil {
			// Unreachable unless a worker died before assigning; treat as
			// cancellation rather than emit a hole in the report.
			return nil, context.Canceled
		}
	}

	outcomes := c.outcomeCounters()
	swept := c.Metrics.Counter(MetricFaultTargets, "benchmark targets swept by fault campaigns")
	for i := range targets {
		br := reports[i]
		rep.Benchmarks = append(rep.Benchmarks, br)
		rep.Total = rep.Total.plus(br.Tally)
		swept.Inc()
		for _, r := range br.Runs {
			outcomes[r.Outcome].Inc()
		}
	}
	return rep, nil
}

// outcomeCounters resolves the per-classification counters (all nil
// no-ops when no registry is attached).
func (c *Campaign) outcomeCounters() [NumOutcomes]*metrics.Counter {
	var out [NumOutcomes]*metrics.Counter
	for i := range out {
		out[i] = c.Metrics.Counter(MetricFaultRuns, "classified faulted runs",
			metrics.L("outcome", Outcome(i).String()))
	}
	return out
}

// runTarget sweeps one target: golden run, site generation, then the
// faulted runs across an inner worker pool. The returned report's Runs
// are in site order and its Tally accumulated in site order, so the
// bytes are independent of worker scheduling.
func (c *Campaign) runTarget(ctx context.Context, t Target, factor int64, workers int) (*BenchmarkReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	golden := t.Run(nil, 0)
	switch {
	case golden.Crashed && golden.Err != nil:
		return nil, fmt.Errorf("fault: golden run of %s crashed: %w", t.Name(), golden.Err)
	case golden.Crashed:
		// A recovered panic with no error attached: don't wrap nil.
		return nil, fmt.Errorf("fault: golden run of %s crashed (panic recovered without detail)", t.Name())
	case golden.Err != nil:
		return nil, fmt.Errorf("fault: golden run of %s failed: %w", t.Name(), golden.Err)
	}
	sites := SitesOf(BenchSeed(c.Seed, t.Name()), c.Sites, golden.Geometry, c.Models)
	budget := golden.Cycles*factor + 1024

	br := &BenchmarkReport{
		Name:               t.Name(),
		GoldenCycles:       golden.Cycles,
		GoldenInstructions: golden.Instructions,
		Runs:               make([]RunRecord, len(sites)),
	}

	bt, buffered := t.(BufferedTarget)
	ft, fastforward := t.(FastForwardTarget)
	if fastforward && c.Checkpoints > 0 {
		// Preparation failure is not a campaign failure: the target keeps
		// producing correct observations through the ordinary path, just
		// without the O(sites) speedup.
		fastforward = ft.PrepareCheckpoints(c.Checkpoints) == nil
	} else {
		fastforward = false
	}
	ffRuns := c.Metrics.Counter(MetricFaultFastForward,
		"faulted runs dispatched through checkpoint fast-forwarding")

	// Dispatch sites in ascending dynamic-index order (ties broken by
	// site index) while every result is still written to its site-order
	// slot: the report bytes are unchanged, and targets that fast-forward
	// from interval checkpoints see monotone fault indices instead of
	// random seeks — each worker's restore point only ever moves forward.
	order := make([]int, len(sites))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return sites[order[a]].At < sites[order[b]].At
	})

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one injector and one output buffer:
			// Classify is done with obs.Output before the next RunBuf
			// reuses it, and the target never retains the injector
			// past its run.
			inj := New(Fault{})
			var buf []byte
			for j := range jobs {
				i := order[j]
				inj.Retarget(sites[i])
				var obs Observation
				switch {
				case fastforward:
					obs = ft.RunSiteBuf(sites[i], budget, buf)
					if cap(obs.Output) > cap(buf) {
						buf = obs.Output
					}
					ffRuns.Inc()
				case buffered:
					obs = bt.RunBuf(inj, budget, buf)
					if cap(obs.Output) > cap(buf) {
						buf = obs.Output
					}
				default:
					obs = t.Run(inj, budget)
				}
				rec := RunRecord{
					Fault:   sites[i],
					Outcome: Classify(golden, obs),
					Cycles:  obs.Cycles,
				}
				if obs.Err != nil {
					rec.Detail = obs.Err.Error()
				}
				br.Runs[i] = rec
			}
		}()
	}
	var canceled error
dispatch:
	for i := range sites {
		select {
		case <-ctx.Done():
			canceled = ctx.Err()
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if canceled != nil {
		return nil, canceled
	}
	for i := range br.Runs {
		br.Tally.add(br.Runs[i].Outcome)
	}
	return br, nil
}
