package fault

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"cambricon/internal/metrics"
)

// scriptedTarget deterministically maps fault sites to outcomes so the
// campaign machinery can be tested without a simulator.
type scriptedTarget struct {
	name string
	runs atomic.Int64
}

func (t *scriptedTarget) Name() string { return t.name }

func (t *scriptedTarget) Run(inj Injector, maxCycles int64) Observation {
	t.runs.Add(1)
	golden := Observation{
		Cycles:       1000,
		Instructions: 100,
		Output:       []byte{0xAA, 0xBB},
		Geometry: Geometry{
			Instructions:    100,
			GPRs:            64,
			VectorSpadWords: 512,
			MatrixSpadWords: 2048,
			VectorLanes:     32,
			MatrixLanes:     64,
		},
	}
	if inj == nil {
		return golden
	}
	inj.BeginRun()
	f := inj.(*Single).Fault()
	obs := Observation{Cycles: 1200, Instructions: 100, Output: []byte{0xAA, 0xBB}}
	switch f.Model {
	case ModelFetchBit:
		obs.Err = errors.New("sim: undecodable instruction")
	case ModelGPRBit:
		obs.Hung = true
		obs.Err = errors.New("sim: watchdog")
	case ModelSpadBit:
		obs.Output = []byte{0xAA, 0xFF} // silent corruption
	case ModelDMABit:
		obs.Crashed = true
	}
	// ModelStuckLane stays masked.
	return obs
}

func TestCampaignClassifiesAndTallies(t *testing.T) {
	tgt := &scriptedTarget{name: "fake"}
	c := &Campaign{Seed: 7, Sites: 10, Workers: 4}
	rep, err := c.Run(context.Background(), []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Benchmarks) != 1 || len(rep.Benchmarks[0].Runs) != 10 {
		t.Fatalf("report shape: %+v", rep)
	}
	br := rep.Benchmarks[0]
	if br.GoldenCycles != 1000 || br.GoldenInstructions != 100 {
		t.Fatalf("golden stats: %+v", br)
	}
	// 10 sites round-robin over 5 models = 2 each.
	want := Tally{Masked: 2, SDC: 2, Detected: 2, Hang: 2, Crash: 2}
	if br.Tally != want {
		t.Fatalf("tally %+v want %+v", br.Tally, want)
	}
	if rep.Total != want {
		t.Fatalf("total %+v", rep.Total)
	}
	if rep.Total.Sum() != 10 {
		t.Fatalf("sum %d", rep.Total.Sum())
	}
	// 1 golden + 10 faulted runs.
	if got := tgt.runs.Load(); got != 11 {
		t.Fatalf("run count %d", got)
	}
	// Every record's outcome matches its own classification inputs.
	for _, rec := range br.Runs {
		if rec.Outcome == OutcomeDetected && rec.Detail == "" {
			t.Fatalf("detected run missing detail: %+v", rec)
		}
	}
	if !strings.Contains(rep.Render(), "fake") {
		t.Fatal("Render missing benchmark name")
	}
}

func TestCampaignReportByteIdentical(t *testing.T) {
	run := func() []byte {
		tgt := &scriptedTarget{name: "fake"}
		c := &Campaign{Seed: 99, Sites: 15, Workers: 8}
		rep, err := c.Run(context.Background(), []Target{tgt})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different reports")
	}
	tgt := &scriptedTarget{name: "fake"}
	rep, err := (&Campaign{Seed: 100, Sites: 15}).Run(context.Background(), []Target{tgt})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, buf.Bytes()) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestCampaignTargetFanOutByteIdentical pins the outer per-target pool:
// sweeping many targets serially (TargetWorkers=1) and concurrently must
// produce byte-identical cambricon-fault/v1 reports, and the metrics
// attached to the fan-out run must agree with the serial tallies.
func TestCampaignTargetFanOutByteIdentical(t *testing.T) {
	names := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	run := func(outer int, reg *metrics.Registry) []byte {
		targets := make([]Target, len(names))
		for i, n := range names {
			targets[i] = &scriptedTarget{name: n}
		}
		c := &Campaign{Seed: 42, Sites: 12, Workers: 3, TargetWorkers: outer, Metrics: reg}
		rep, err := c.Run(context.Background(), targets)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1, nil)
	reg := metrics.New()
	fanned := run(4, reg)
	if !bytes.Equal(serial, fanned) {
		t.Fatal("target fan-out changed the report bytes")
	}
	if got := reg.Counter(MetricFaultTargets, "").Value(); got != uint64(len(names)) {
		t.Fatalf("%s = %d, want %d", MetricFaultTargets, got, len(names))
	}
	var classified uint64
	for i := 0; i < NumOutcomes; i++ {
		classified += reg.Counter(MetricFaultRuns, "",
			metrics.L("outcome", Outcome(i).String())).Value()
	}
	if want := uint64(len(names) * 12); classified != want {
		t.Fatalf("classified runs = %d, want %d", classified, want)
	}
}

func TestCampaignCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tgt := &scriptedTarget{name: "fake"}
	_, err := (&Campaign{Seed: 1, Sites: 5}).Run(ctx, []Target{tgt})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type crashingGolden struct{}

func (crashingGolden) Name() string { return "bad" }
func (crashingGolden) Run(inj Injector, maxCycles int64) Observation {
	return Observation{Err: errors.New("broken program"), Crashed: inj == nil}
}

func TestCampaignGoldenFailureIsError(t *testing.T) {
	_, err := (&Campaign{Seed: 1, Sites: 3}).Run(context.Background(), []Target{crashingGolden{}})
	if err == nil || !strings.Contains(err.Error(), "golden run") {
		t.Fatalf("err = %v", err)
	}
}

// panickyGolden crashes the golden run with no error attached — the
// shape a recovered panic without detail produces. The campaign must
// still return a real error (and not wrap a nil one).
type panickyGolden struct{}

func (panickyGolden) Name() string                    { return "panicky" }
func (panickyGolden) Run(Injector, int64) Observation { return Observation{Crashed: true} }

func TestCampaignGoldenCrashWithoutErr(t *testing.T) {
	_, err := (&Campaign{Seed: 1, Sites: 3}).Run(context.Background(), []Target{panickyGolden{}})
	if err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(err.Error(), "<nil>") {
		t.Fatalf("golden-crash error wraps nil: %v", err)
	}
}

// bufferedScripted implements BufferedTarget over the scripted target,
// copying outputs into the campaign-provided buffer when it fits.
type bufferedScripted struct {
	scriptedTarget
	bufRuns atomic.Int64
}

func (t *bufferedScripted) RunBuf(inj Injector, maxCycles int64, buf []byte) Observation {
	t.bufRuns.Add(1)
	obs := t.Run(inj, maxCycles)
	if obs.Output != nil && cap(buf) >= len(obs.Output) {
		out := buf[:len(obs.Output)]
		copy(out, obs.Output)
		obs.Output = out
	}
	return obs
}

// TestCampaignUsesBufferedTarget pins that the campaign routes faulted
// runs through RunBuf when the target supports it — and that the report
// is byte-identical to the plain Run path.
func TestCampaignUsesBufferedTarget(t *testing.T) {
	c := &Campaign{Seed: 11, Sites: 20, Workers: 2}
	bt := &bufferedScripted{scriptedTarget: scriptedTarget{name: "scripted"}}
	repBuf, err := c.Run(context.Background(), []Target{bt})
	if err != nil {
		t.Fatal(err)
	}
	if got := bt.bufRuns.Load(); got != 20 {
		t.Fatalf("RunBuf called %d times, want 20 (one per site)", got)
	}
	repPlain, err := c.Run(context.Background(), []Target{&scriptedTarget{name: "scripted"}})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := repBuf.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := repPlain.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("buffered and plain campaign reports differ")
	}
}

// TestCampaignDispatchOrderInvisible pins that the At-sorted dispatch
// order runTarget uses is invisible in the report: record i carries
// exactly site i of the seeded generation order (not the sorted order),
// and the marshaled report is byte-identical across worker counts. The
// guard assertion first proves the generated sites are not already
// At-sorted, so the test would catch a dispatch order leaking through.
func TestCampaignDispatchOrderInvisible(t *testing.T) {
	const seed, n = 5, 25
	tgt := &scriptedTarget{name: "fake"}
	golden := tgt.Run(nil, 0)
	sites := Sites(BenchSeed(seed, tgt.name), n, golden.Geometry)
	sorted := true
	for i := 1; i < len(sites); i++ {
		if sites[i].At < sites[i-1].At {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("generated sites are already At-sorted; pick a different seed to make this test meaningful")
	}

	render := func(workers int) (*Report, []byte) {
		t.Helper()
		c := &Campaign{Seed: seed, Sites: n, Workers: workers}
		rep, err := c.Run(context.Background(), []Target{&scriptedTarget{name: "fake"}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return rep, buf.Bytes()
	}
	repA, bytesA := render(1)
	_, bytesB := render(8)
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatal("report bytes differ across worker counts")
	}
	for i, rec := range repA.Benchmarks[0].Runs {
		if rec.Fault != sites[i] {
			t.Fatalf("run %d records site %+v, want generation-order site %+v", i, rec.Fault, sites[i])
		}
	}
}
