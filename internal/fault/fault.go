// Package fault is the fault-injection subsystem of the Cambricon-ACC
// simulator: deterministic, seeded fault models threaded through the
// execution core the same way internal/trace is.
//
// The contract with the simulator mirrors the tracer's: a Machine with a
// nil Injector makes no fault calls at all — the hot path stays
// allocation-free and produces bit-identical cycle counts — and an
// attached Injector perturbs only the architectural state it explicitly
// flips, never the timing model itself.
//
// Five fault models cover the structures of the Section IV prototype:
//
//	spad-bit     transient single-bit flip of a 16-bit scratchpad word
//	gpr-bit      transient single-bit flip of a 32-bit scalar register
//	fetch-bit    single-bit corruption of a 64-bit instruction encoding
//	             at fetch (an undecodable word is a detected fault)
//	dma-bit      single-bit corruption of an in-flight DMA transfer
//	stuck-lane   persistent stuck-at-0/1 fault in one vector or matrix
//	             MAC lane output bit
//
// Campaign sweeps seeded fault sites across the Table III benchmarks and
// classifies every run against its golden (fault-free) twin; Report is
// the machine-readable result (schema cambricon-fault/v1).
package fault

import "fmt"

// Space identifies a scratchpad memory.
type Space uint8

const (
	// SpaceVector is the 64KB vector scratchpad.
	SpaceVector Space = iota
	// SpaceMatrix is the 768KB matrix scratchpad.
	SpaceMatrix
)

func (s Space) String() string {
	if s == SpaceMatrix {
		return "matrix"
	}
	return "vector"
}

// MarshalText renders the space name into reports.
func (s Space) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a space name.
func (s *Space) UnmarshalText(b []byte) error {
	switch string(b) {
	case "vector":
		*s = SpaceVector
	case "matrix":
		*s = SpaceMatrix
	default:
		return fmt.Errorf("fault: unknown space %q", b)
	}
	return nil
}

// Unit identifies a functional unit with faultable lanes.
type Unit uint8

const (
	// UnitVector is the 32-lane vector functional unit.
	UnitVector Unit = iota
	// UnitMatrix is the matrix unit (32 blocks x 32 MACs).
	UnitMatrix
)

func (u Unit) String() string {
	if u == UnitMatrix {
		return "matrix"
	}
	return "vector"
}

// MarshalText renders the unit name into reports.
func (u Unit) MarshalText() ([]byte, error) { return []byte(u.String()), nil }

// UnmarshalText parses a unit name.
func (u *Unit) UnmarshalText(b []byte) error {
	switch string(b) {
	case "vector":
		*u = UnitVector
	case "matrix":
		*u = UnitMatrix
	default:
		return fmt.Errorf("fault: unknown unit %q", b)
	}
	return nil
}

// Model names one fault model of the campaign taxonomy.
type Model uint8

const (
	// ModelSpadBit flips one bit of a scratchpad word once.
	ModelSpadBit Model = iota
	// ModelGPRBit flips one bit of a scalar register once.
	ModelGPRBit
	// ModelFetchBit flips one bit of an instruction encoding at fetch.
	ModelFetchBit
	// ModelDMABit flips one bit of an in-flight DMA transfer.
	ModelDMABit
	// ModelStuckLane forces one output bit of one FU lane for the whole
	// run (a stuck-at manufacturing fault rather than a transient).
	ModelStuckLane

	// NumModels sizes per-model sweeps.
	NumModels = 5
)

var modelNames = [NumModels]string{
	"spad-bit", "gpr-bit", "fetch-bit", "dma-bit", "stuck-lane",
}

func (m Model) String() string {
	if int(m) < len(modelNames) {
		return modelNames[m]
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// MarshalText renders the model name into reports.
func (m Model) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses a model name.
func (m *Model) UnmarshalText(b []byte) error {
	for i, name := range modelNames {
		if string(b) == name {
			*m = Model(i)
			return nil
		}
	}
	return fmt.Errorf("fault: unknown model %q", b)
}

// Fault is one concrete fault site: a model plus the coordinates the
// model needs. Unused coordinates stay zero and are omitted from reports.
type Fault struct {
	Model Model `json:"model"`
	// At is the dynamic instruction index a transient fault fires at
	// (ModelDMABit fires at the first DMA transfer at or after At;
	// ModelStuckLane is active for the whole run and ignores At).
	At int64 `json:"at"`
	// Bit selects the flipped (or stuck) bit: 0..15 for scratchpad words
	// and lane outputs, 0..31 for GPRs, 0..63 for instruction encodings,
	// 0..7 within the byte selected for DMA corruption.
	Bit uint8 `json:"bit"`

	// Space and Word locate a ModelSpadBit flip (Word is a 16-bit
	// element index).
	Space Space `json:"space,omitempty"`
	Word  int   `json:"word,omitempty"`

	// Reg names the register of a ModelGPRBit flip.
	Reg uint8 `json:"reg,omitempty"`

	// Byte locates a ModelDMABit flip within the transfer (reduced
	// modulo the transfer length).
	Byte int `json:"byte,omitempty"`

	// Unit and Lane locate a ModelStuckLane fault; Val is the stuck
	// value (0 or 1).
	Unit Unit  `json:"unit,omitempty"`
	Lane int   `json:"lane,omitempty"`
	Val  uint8 `json:"val,omitempty"`
}

// String renders a compact human-readable site description.
func (f Fault) String() string {
	switch f.Model {
	case ModelSpadBit:
		return fmt.Sprintf("spad-bit %s[%d] bit %d at #%d", f.Space, f.Word, f.Bit, f.At)
	case ModelGPRBit:
		return fmt.Sprintf("gpr-bit $%d bit %d at #%d", f.Reg, f.Bit, f.At)
	case ModelFetchBit:
		return fmt.Sprintf("fetch-bit bit %d at #%d", f.Bit, f.At)
	case ModelDMABit:
		return fmt.Sprintf("dma-bit byte %d bit %d at #%d", f.Byte, f.Bit, f.At)
	case ModelStuckLane:
		return fmt.Sprintf("stuck-lane %s lane %d bit %d = %d", f.Unit, f.Lane, f.Bit, f.Val)
	}
	return fmt.Sprintf("fault(%d)", uint8(f.Model))
}

// Stuck describes the active stuck-at lane fault reported to the
// simulator's functional units.
type Stuck struct {
	Lane int
	Bit  uint8
	Val  uint8
}

// State is the architectural state an injector may perturb, implemented
// by *sim.Machine. Methods are deliberately narrow: an injector can flip
// bits, not rewrite state wholesale.
type State interface {
	// FlipGPRBit flips bit (mod 32) of scalar register reg (mod 64).
	FlipGPRBit(reg, bit uint8)
	// FlipSpadBit flips bit (mod 16) of the 16-bit word at element
	// index word of the selected scratchpad; it reports whether the
	// word was in range.
	FlipSpadBit(space Space, word int, bit uint8) bool
}

// Injector receives the simulator's fault sites. A nil Injector on the
// Machine disables every call; implementations must be deterministic so
// campaign reports are reproducible. Injectors are reused across runs
// (BeginRun resets transient-fire state) but are not safe for use by
// concurrent machines.
type Injector interface {
	// BeginRun resets per-run state before a simulation starts.
	BeginRun()
	// BeforeExec fires before the dynamic instruction idx executes; the
	// injector may flip architectural bits through st.
	BeforeExec(idx int64, st State)
	// CorruptFetch may return a corrupted version of the 64-bit
	// instruction encoding fetched at idx (return w unchanged for no
	// fault). The simulator decodes the corrupted word; an undecodable
	// word surfaces as a detected fault.
	CorruptFetch(idx int64, w uint64) uint64
	// CorruptDMA may flip bits of an in-flight DMA transfer's payload at
	// dynamic instruction idx; it reports whether it did.
	CorruptDMA(idx int64, data []byte) bool
	// StuckLane reports the unit's persistent stuck-at lane fault, if
	// any. The simulator queries it on every operation the unit retires.
	StuckLane(unit Unit) (Stuck, bool)
}

// Single is an Injector realizing exactly one Fault. Transient models
// fire once per run; ModelStuckLane is active for the whole run.
type Single struct {
	f     Fault
	fired bool
}

// New builds the injector for one fault site.
func New(f Fault) *Single { return &Single{f: f} }

// Retarget re-aims the injector at a different fault site, re-arming it.
// Campaign workers use it to sweep many sites through one injector
// instead of allocating one per run.
func (s *Single) Retarget(f Fault) { s.f, s.fired = f, false }

// Fault returns the site the injector realizes.
func (s *Single) Fault() Fault { return s.f }

// BeginRun re-arms the transient fault.
func (s *Single) BeginRun() { s.fired = false }

// Fired reports whether the transient fault has been applied this run.
// Fast-forward targets poll it to learn when a windowed model (dma-bit
// fires at the first transfer at or after At) has landed, so they can
// detach the injector and resume the remainder on the unobserved hot
// path.
func (s *Single) Fired() bool { return s.fired }

// BeforeExec applies state-resident transients (GPR and scratchpad
// flips) when their dynamic instruction arrives.
func (s *Single) BeforeExec(idx int64, st State) {
	if s.fired || idx != s.f.At {
		return
	}
	switch s.f.Model {
	case ModelGPRBit:
		s.fired = true
		st.FlipGPRBit(s.f.Reg, s.f.Bit)
	case ModelSpadBit:
		s.fired = true
		st.FlipSpadBit(s.f.Space, s.f.Word, s.f.Bit)
	}
}

// CorruptFetch applies a fetch-encoding transient.
func (s *Single) CorruptFetch(idx int64, w uint64) uint64 {
	if s.f.Model != ModelFetchBit || s.fired || idx != s.f.At {
		return w
	}
	s.fired = true
	return w ^ 1<<(s.f.Bit%64)
}

// CorruptDMA applies a DMA payload transient to the first transfer at or
// after the fault's dynamic index.
func (s *Single) CorruptDMA(idx int64, data []byte) bool {
	if s.f.Model != ModelDMABit || s.fired || idx < s.f.At || len(data) == 0 {
		return false
	}
	s.fired = true
	data[s.f.Byte%len(data)] ^= 1 << (s.f.Bit % 8)
	return true
}

// StuckLane reports the persistent lane fault to the matching unit.
func (s *Single) StuckLane(unit Unit) (Stuck, bool) {
	if s.f.Model != ModelStuckLane || unit != s.f.Unit {
		return Stuck{}, false
	}
	return Stuck{Lane: s.f.Lane, Bit: s.f.Bit % 16, Val: s.f.Val}, true
}
