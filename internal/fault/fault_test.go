package fault

import (
	"errors"
	"reflect"
	"testing"
)

type fakeState struct {
	gprReg, gprBit uint8
	gprCalls       int
	spadSpace      Space
	spadWord       int
	spadBit        uint8
	spadCalls      int
}

func (s *fakeState) FlipGPRBit(reg, bit uint8) {
	s.gprCalls++
	s.gprReg, s.gprBit = reg, bit
}

func (s *fakeState) FlipSpadBit(space Space, word int, bit uint8) bool {
	s.spadCalls++
	s.spadSpace, s.spadWord, s.spadBit = space, word, bit
	return true
}

func TestSingleGPRFiresOnce(t *testing.T) {
	inj := New(Fault{Model: ModelGPRBit, At: 5, Reg: 3, Bit: 7})
	st := &fakeState{}
	inj.BeginRun()
	for i := int64(0); i < 10; i++ {
		inj.BeforeExec(i, st)
	}
	if st.gprCalls != 1 || st.gprReg != 3 || st.gprBit != 7 {
		t.Fatalf("gpr flip: calls=%d reg=%d bit=%d", st.gprCalls, st.gprReg, st.gprBit)
	}
	// Re-armed after BeginRun.
	inj.BeginRun()
	inj.BeforeExec(5, st)
	if st.gprCalls != 2 {
		t.Fatalf("BeginRun did not re-arm: calls=%d", st.gprCalls)
	}
}

func TestSingleSpadTargetsWord(t *testing.T) {
	inj := New(Fault{Model: ModelSpadBit, At: 0, Space: SpaceMatrix, Word: 42, Bit: 11})
	st := &fakeState{}
	inj.BeginRun()
	inj.BeforeExec(0, st)
	if st.spadCalls != 1 || st.spadSpace != SpaceMatrix || st.spadWord != 42 || st.spadBit != 11 {
		t.Fatalf("spad flip: %+v", st)
	}
}

func TestSingleFetchFlipsOneBit(t *testing.T) {
	inj := New(Fault{Model: ModelFetchBit, At: 2, Bit: 63})
	inj.BeginRun()
	if got := inj.CorruptFetch(1, 0); got != 0 {
		t.Fatalf("fired early: %x", got)
	}
	if got := inj.CorruptFetch(2, 0); got != 1<<63 {
		t.Fatalf("bit 63 flip: got %x", got)
	}
	if got := inj.CorruptFetch(2, 0); got != 0 {
		t.Fatalf("fired twice: %x", got)
	}
}

func TestSingleDMAFiresAtOrAfter(t *testing.T) {
	inj := New(Fault{Model: ModelDMABit, At: 10, Byte: 5, Bit: 3})
	inj.BeginRun()
	data := make([]byte, 4)
	if inj.CorruptDMA(9, data) {
		t.Fatal("fired before At")
	}
	// First DMA at or after At fires; Byte reduced mod len.
	if !inj.CorruptDMA(12, data) {
		t.Fatal("did not fire at idx >= At")
	}
	if data[5%4] != 1<<3 {
		t.Fatalf("payload: %v", data)
	}
	if inj.CorruptDMA(13, data) {
		t.Fatal("fired twice")
	}
}

func TestSingleStuckLane(t *testing.T) {
	inj := New(Fault{Model: ModelStuckLane, Unit: UnitMatrix, Lane: 9, Bit: 30, Val: 1})
	if _, ok := inj.StuckLane(UnitVector); ok {
		t.Fatal("wrong unit matched")
	}
	st, ok := inj.StuckLane(UnitMatrix)
	if !ok || st.Lane != 9 || st.Bit != 30%16 || st.Val != 1 {
		t.Fatalf("stuck: %+v ok=%v", st, ok)
	}
}

func TestSitesDeterministicAndBounded(t *testing.T) {
	geo := Geometry{
		Instructions:    100,
		GPRs:            64,
		VectorSpadWords: 1024,
		MatrixSpadWords: 4096,
		VectorLanes:     32,
		MatrixLanes:     1024,
	}
	a := Sites(42, 50, geo)
	b := Sites(42, 50, geo)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different sites")
	}
	c := Sites(43, 50, geo)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical sites")
	}
	counts := map[Model]int{}
	for _, f := range a {
		counts[f.Model]++
		if f.At < 0 || f.At >= geo.Instructions {
			t.Fatalf("At out of range: %+v", f)
		}
		switch f.Model {
		case ModelGPRBit:
			if int(f.Reg) >= geo.GPRs || f.Bit >= 32 {
				t.Fatalf("gpr site out of range: %+v", f)
			}
		case ModelSpadBit:
			limit := geo.VectorSpadWords
			if f.Space == SpaceMatrix {
				limit = geo.MatrixSpadWords
			}
			if f.Word >= limit || f.Bit >= 16 {
				t.Fatalf("spad site out of range: %+v", f)
			}
		case ModelStuckLane:
			limit := geo.VectorLanes
			if f.Unit == UnitMatrix {
				limit = geo.MatrixLanes
			}
			if f.Lane >= limit || f.Bit >= 16 || f.Val > 1 {
				t.Fatalf("lane site out of range: %+v", f)
			}
		}
	}
	// Round-robin: every model appears with 50 sites.
	for m := Model(0); m < NumModels; m++ {
		if counts[m] != 10 {
			t.Fatalf("model %s: %d sites, want 10", m, counts[m])
		}
	}
}

func TestBenchSeedVariesByName(t *testing.T) {
	if BenchSeed(1, "MLP") == BenchSeed(1, "CNN") {
		t.Fatal("benchmark names hash identically")
	}
	if BenchSeed(1, "MLP") != BenchSeed(1, "MLP") {
		t.Fatal("BenchSeed not deterministic")
	}
}

func TestClassify(t *testing.T) {
	golden := Observation{Output: []byte{1, 2, 3}}
	cases := []struct {
		name string
		obs  Observation
		want Outcome
	}{
		{"masked", Observation{Output: []byte{1, 2, 3}}, OutcomeMasked},
		{"sdc", Observation{Output: []byte{1, 2, 4}}, OutcomeSDC},
		{"detected", Observation{Err: errors.New("bad decode")}, OutcomeDetected},
		{"hang", Observation{Hung: true, Err: errors.New("watchdog")}, OutcomeHang},
		{"crash", Observation{Crashed: true, Hung: true}, OutcomeCrash},
	}
	for _, tc := range cases {
		if got := Classify(golden, tc.obs); got != tc.want {
			t.Errorf("%s: got %s want %s", tc.name, got, tc.want)
		}
	}
}

func TestModelTextRoundTrip(t *testing.T) {
	for m := Model(0); m < NumModels; m++ {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Model
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Fatalf("round trip %s -> %s", m, back)
		}
	}
	var m Model
	if err := m.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("unknown model accepted")
	}
	for o := Outcome(0); o < NumOutcomes; o++ {
		text, _ := o.MarshalText()
		var back Outcome
		if err := back.UnmarshalText(text); err != nil || back != o {
			t.Fatalf("outcome round trip %s: %v", o, err)
		}
	}
}
