package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Schema versions the campaign report format.
const Schema = "cambricon-fault/v1"

// Tally counts outcomes per class.
type Tally struct {
	Masked   int `json:"masked"`
	SDC      int `json:"sdc"`
	Detected int `json:"detected"`
	Hang     int `json:"hang"`
	Crash    int `json:"crash"`
}

func (t *Tally) add(o Outcome) {
	switch o {
	case OutcomeMasked:
		t.Masked++
	case OutcomeSDC:
		t.SDC++
	case OutcomeDetected:
		t.Detected++
	case OutcomeHang:
		t.Hang++
	case OutcomeCrash:
		t.Crash++
	}
}

func (t Tally) plus(o Tally) Tally {
	return Tally{
		Masked:   t.Masked + o.Masked,
		SDC:      t.SDC + o.SDC,
		Detected: t.Detected + o.Detected,
		Hang:     t.Hang + o.Hang,
		Crash:    t.Crash + o.Crash,
	}
}

// Sum returns the total runs tallied.
func (t Tally) Sum() int { return t.Masked + t.SDC + t.Detected + t.Hang + t.Crash }

// RunRecord is one faulted run's entry in the report.
type RunRecord struct {
	Fault   Fault   `json:"fault"`
	Outcome Outcome `json:"outcome"`
	// Cycles is the faulted run's cycle count (best-effort for hangs and
	// crashes).
	Cycles int64 `json:"cycles"`
	// Detail carries the structured error of a detected fault.
	Detail string `json:"detail,omitempty"`
}

// BenchmarkReport is one benchmark's sweep.
type BenchmarkReport struct {
	Name               string      `json:"name"`
	GoldenCycles       int64       `json:"golden_cycles"`
	GoldenInstructions int64       `json:"golden_instructions"`
	Runs               []RunRecord `json:"runs"`
	Tally              Tally       `json:"tally"`
}

// Report is the machine-readable campaign result. It contains no maps
// and no timestamps, so the same seed marshals to byte-identical JSON.
type Report struct {
	Schema         string `json:"schema"`
	Seed           uint64 `json:"seed"`
	SitesPerBench  int    `json:"sites_per_benchmark"`
	WatchdogFactor int64  `json:"watchdog_factor"`
	// Models names the swept model subset (Campaign.Models); absent for
	// full-taxonomy sweeps, so their reports keep the pre-field bytes.
	Models     []Model            `json:"models,omitempty"`
	Benchmarks []*BenchmarkReport `json:"benchmarks"`
	Total      Tally              `json:"total"`
}

// Write marshals the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Render formats a human-readable summary table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: seed=%d sites/bench=%d watchdog=%dx\n",
		r.Seed, r.SitesPerBench, r.WatchdogFactor)
	fmt.Fprintf(&b, "%-20s %7s %7s %9s %6s %6s %7s\n",
		"benchmark", "masked", "sdc", "detected", "hang", "crash", "runs")
	for _, br := range r.Benchmarks {
		t := br.Tally
		fmt.Fprintf(&b, "%-20s %7d %7d %9d %6d %6d %7d\n",
			br.Name, t.Masked, t.SDC, t.Detected, t.Hang, t.Crash, t.Sum())
	}
	t := r.Total
	fmt.Fprintf(&b, "%-20s %7d %7d %9d %6d %6d %7d\n",
		"total", t.Masked, t.SDC, t.Detected, t.Hang, t.Crash, t.Sum())
	return b.String()
}
