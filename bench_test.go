package cambricon

import (
	"sync"
	"testing"

	"cambricon/internal/bench"
)

// The harness shares one suite across figure benchmarks so the expensive
// setup (program generation, simulator runs) is paid once; steady-state
// iterations measure the experiment evaluation itself.
var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

func sharedSuite(b *testing.B) *bench.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = bench.NewSuite(7)
		if _, err := suite.Programs(); err != nil {
			b.Fatal(err)
		}
	})
	return suite
}

func benchExperiment(b *testing.B, id string) {
	s := sharedSuite(b)
	e, ok := bench.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	if _, err := e.Run(s); err != nil { // warm caches, verify it works
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per reproduced table/figure (see DESIGN.md §5).

func BenchmarkTableIOverview(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkTableIIParameters(b *testing.B)   { benchExperiment(b, "tab2") }
func BenchmarkTableIIIBenchmarks(b *testing.B)  { benchExperiment(b, "tab3") }
func BenchmarkFlexibility(b *testing.B)         { benchExperiment(b, "flex") }
func BenchmarkFig10CodeDensity(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11InstructionMix(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12Speedup(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13Energy(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkTableIVLayout(b *testing.B)       { benchExperiment(b, "tab4") }
func BenchmarkLogisticExtension(b *testing.B)   { benchExperiment(b, "logreg") }

// Per-benchmark end-to-end simulations: generate once, then measure a full
// verified accelerator run per iteration.
func benchSimulate(b *testing.B, name string) {
	p, err := GenerateBenchmark(name, 7)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Execute(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		if _, err := p.Execute(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateMLP(b *testing.B)  { benchSimulate(b, "MLP") }
func BenchmarkSimulateCNN(b *testing.B)  { benchSimulate(b, "CNN") }
func BenchmarkSimulateRNN(b *testing.B)  { benchSimulate(b, "RNN") }
func BenchmarkSimulateLSTM(b *testing.B) { benchSimulate(b, "LSTM") }
func BenchmarkSimulateBM(b *testing.B)   { benchSimulate(b, "BM") }
func BenchmarkSimulateRBM(b *testing.B)  { benchSimulate(b, "RBM") }
func BenchmarkSimulateSOM(b *testing.B)  { benchSimulate(b, "SOM") }
func BenchmarkSimulateHNN(b *testing.B)  { benchSimulate(b, "HNN") }

// Micro-benchmarks of the toolchain itself.

func BenchmarkAssembler(b *testing.B) {
	p, err := GenerateBenchmark("CNN", 7)
	if err != nil {
		b.Fatal(err)
	}
	src := p.Source
	b.ReportMetric(float64(p.Len()), "instructions")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	p := mustAssemble(b, "\tMMV $7, $1, $4, $3, $0\n")
	inst := p.Instructions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := Encode(inst)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMVThroughput measures simulator throughput on the core matrix
// primitive (a 256x256 MMV per iteration).
func BenchmarkMMVThroughput(b *testing.B) {
	p := mustAssemble(b, `
	SMOVE $1, #256
	SMOVE $2, #65536
	SMOVE $4, #0
	SMOVE $5, #0
	SMOVE $6, #8192
	RV    $4, $1
	MMV   $6, $1, $5, $4, $1
`)
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.LoadProgram(p.Instructions)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(256*256, "MACs/op")
}

// BenchmarkMMVvsVDOTAblation reports the Section III-A design-choice
// ablation: one MMV versus a row of VDOTs for the same matrix-vector
// product (the dedicated instruction must win).
func BenchmarkMMVvsVDOTAblation(b *testing.B) {
	mmv := mustAssemble(b, `
	SMOVE $1, #64
	SMOVE $4, #0
	SMOVE $6, #8192
	RV    $4, $1
	MMV   $6, $1, $5, $4, $1
`)
	var vdotSrc string
	vdotSrc = "\tSMOVE $1, #64\n\tSMOVE $4, #0\n\tSMOVE $5, #8192\n\tRV $4, $1\n"
	for i := 0; i < 64; i++ {
		vdotSrc += "\tVDOT $10, $1, $4, $5\n"
	}
	vdot := mustAssemble(b, vdotSrc)
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	run := func(p *Program) int64 {
		m.Reset()
		m.LoadProgram(p.Instructions)
		st, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		return st.Cycles
	}
	mmvCycles := run(mmv)
	vdotCycles := run(vdot)
	if mmvCycles >= vdotCycles {
		b.Fatalf("MMV (%d cycles) should beat VDOT decomposition (%d cycles)",
			mmvCycles, vdotCycles)
	}
	b.ReportMetric(float64(vdotCycles)/float64(mmvCycles), "speedup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(mmv)
	}
}

func BenchmarkDesignAblations(b *testing.B) { benchExperiment(b, "ablate") }

func BenchmarkMMVUtilizationSweep(b *testing.B) { benchExperiment(b, "sweep") }
