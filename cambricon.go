// Package cambricon is a from-scratch reproduction of "Cambricon: An
// Instruction Set Architecture for Neural Networks" (ISCA 2016): the
// Cambricon ISA, an assembler and disassembler, a cycle-approximate
// simulator of the Cambricon-ACC prototype accelerator, the ten Table III
// benchmark networks with verified code generators, the DaDianNao / x86 /
// MIPS / GPU baselines, and an experiment harness that regenerates every
// table and figure of the paper's evaluation.
//
// The package is a facade over the implementation packages:
//
//	Assemble("VLOAD $3, $0, #100 ...")   source -> program
//	m, _ := NewMachine(DefaultConfig())  a Table II accelerator
//	m.LoadProgram(prog.Instructions)
//	stats, _ := m.Run()
//
// Benchmarks and experiments:
//
//	p, _ := GenerateBenchmark("MLP", seed) // runnable, self-verifying
//	tbl, _ := RunExperiment("fig10", seed) // paper-vs-measured table
package cambricon

import (
	"fmt"

	"cambricon/internal/asm"
	"cambricon/internal/baseline/dadiannao"
	"cambricon/internal/bench"
	"cambricon/internal/codegen"
	"cambricon/internal/core"
	"cambricon/internal/fixed"
	"cambricon/internal/sim"
	"cambricon/internal/workload"
)

// ISA types.
type (
	// Instruction is one decoded Cambricon instruction.
	Instruction = core.Instruction
	// Opcode identifies one of the 43 instructions.
	Opcode = core.Opcode
	// Program is an assembled Cambricon program.
	Program = asm.Program
)

// Version identifies the simulator release; the camsim and camrepro
// -version flags report it so trace and report files can be tied back
// to the build that produced them.
const Version = "0.2.0"

// NumInstructions is the instruction-set size (43, Section V-B1).
const NumInstructions = core.NumInstructions

// NumGPRs is the scalar register file size (64).
const NumGPRs = core.NumGPRs

// Fixed-point helpers (the accelerator's 16-bit Q8.8 datapath).
type Num = fixed.Num

// FromFloat converts to the accelerator's fixed-point format.
func FromFloat(f float64) Num { return fixed.FromFloat(f) }

// Assemble parses Cambricon assembly (the paper's Fig. 7 syntax).
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders instructions back to assembly text.
func Disassemble(prog []Instruction) string { return asm.Disassemble(prog) }

// Encode packs an instruction into its 64-bit binary form.
func Encode(inst Instruction) (uint64, error) { return core.Encode(inst) }

// Decode unpacks a 64-bit instruction word.
func Decode(w uint64) (Instruction, error) { return core.Decode(w) }

// EncodeProgram serializes a program to its binary image.
func EncodeProgram(prog []Instruction) ([]byte, error) { return core.EncodeProgram(prog) }

// DecodeProgram parses a binary program image.
func DecodeProgram(img []byte) ([]Instruction, error) { return core.DecodeProgram(img) }

// Simulator types.
type (
	// Machine is one Cambricon-ACC accelerator instance.
	Machine = sim.Machine
	// Config carries the microarchitectural parameters (Table II).
	Config = sim.Config
	// Stats summarizes a run.
	Stats = sim.Stats
)

// DefaultConfig returns the published Table II prototype parameters.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewMachine builds an accelerator.
func NewMachine(cfg Config) (*Machine, error) { return sim.New(cfg) }

// Benchmark types.
type (
	// BenchmarkProgram is a generated, self-verifying benchmark: assembly
	// source, memory image and reference expectations.
	BenchmarkProgram = codegen.Program
	// Workload describes a benchmark at layer granularity.
	Workload = workload.Benchmark
)

// BenchmarkNames lists the ten Table III benchmarks in paper order.
func BenchmarkNames() []string { return workload.Names() }

// Workloads returns the layer-level descriptions of the ten benchmarks.
func Workloads() []Workload { return workload.Benchmarks() }

// GenerateBenchmark lowers one Table III benchmark (or "Logistic", the
// Section VI extension) to runnable Cambricon assembly with its data image
// and reference expectations.
func GenerateBenchmark(name string, seed uint64) (*BenchmarkProgram, error) {
	return codegen.ByName(name, seed)
}

// GenerateAll lowers all ten Table III benchmarks.
func GenerateAll(seed uint64) ([]*BenchmarkProgram, error) { return codegen.All(seed) }

// RunBenchmark generates, executes and verifies one benchmark on a fresh
// Table II machine, returning the run statistics.
func RunBenchmark(name string, seed uint64) (Stats, error) {
	p, err := GenerateBenchmark(name, seed)
	if err != nil {
		return Stats{}, err
	}
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		return Stats{}, err
	}
	return p.Execute(m)
}

// Experiment results.
type ResultTable = bench.Table

// ExperimentIDs lists the reproducible tables and figures in paper order.
func ExperimentIDs() []string {
	es := bench.Experiments()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// RunExperiment reproduces one table or figure ("tab1".."tab4",
// "fig10".."fig13", "flex", "logreg").
func RunExperiment(id string, seed uint64) (*ResultTable, error) {
	e, ok := bench.ExperimentByID(id)
	if !ok {
		return nil, fmt.Errorf("cambricon: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return e.Run(bench.NewSuite(seed))
}

// RunAllExperiments reproduces every table and figure over one shared
// suite (benchmark programs and simulations are generated once).
func RunAllExperiments(seed uint64) ([]*ResultTable, error) {
	s := bench.NewSuite(seed)
	var out []*ResultTable
	for _, e := range bench.Experiments() {
		tbl, err := e.Run(s)
		if err != nil {
			return nil, fmt.Errorf("cambricon: %s: %w", e.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// DaDianNaoSupports reports whether the paper's baseline accelerator can
// express the benchmark with its four layer-type instructions
// (Section V-B1: 3 of the 10 Table III networks).
func DaDianNaoSupports(w *Workload) bool {
	return dadiannao.CanExpress(w)
}

// DaDianNaoCompileError explains why a benchmark is inexpressible on the
// baseline (nil when it is expressible).
func DaDianNaoCompileError(w *Workload) error {
	_, err := dadiannao.Compile(w)
	return err
}
